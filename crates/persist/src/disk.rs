//! [`DiskWalkStore`]: a file-backed PageRank Store with page-granular write-back.
//!
//! The store implements the full `WalkIndex`/`WalkIndexMut` surface, so every engine
//! adopts it without change.  Reads are served from a resident image (the cache warms
//! fully at open through the snapshot's [`crate::pager::PageCache`]; demand paging
//! via `mmap` is the documented follow-up — std-only file I/O is the constraint
//! here).  What the disk layout buys today is the **checkpoint path**:
//!
//! * every segment owns a capacity-reserved slot of the on-disk heap (the same
//!   power-of-two rule as the in-memory arena), and the store tracks exactly which
//!   heap *pages* its writes have touched since the last checkpoint;
//! * [`PersistentWalkStore::encode_walks`] re-renders only the dirty pages and
//!   streams every clean page **byte-for-byte out of the previous generation's
//!   file** — in steady state (in-place rewrites dominating, as the arena stats
//!   prove) a checkpoint's encoding cost is proportional to what changed, not to the
//!   store size;
//! * a segment that outgrows its reservation relocates to the heap tail, leaving
//!   garbage that a half-dead-rule **file compaction** repacks (counted, timed, and
//!   reported like the in-memory compactions).
//!
//! Crash safety is inherited from the snapshot container: generations are immutable
//! and published atomically, so a crash mid-checkpoint leaves the previous
//! generation untouched and the WAL replays over it.

use crate::io::{corrupt, PersistResult};
use crate::layout::{
    assemble_walks_payload, file_reservation, FileSlot, PagedWalks, PersistentWalkStore,
    WalksHeader, FILLER_WORD, WALKS_PAGE_SIZE,
};
use crate::pager::PagerStats;
use ppr_graph::NodeId;
use ppr_store::arena::ArenaStats;
use ppr_store::{SegmentId, WalkIndex, WalkIndexMut, WalkStore};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

const STEPS_PER_PAGE: u64 = (WALKS_PAGE_SIZE / 4) as u64;

/// Write-back and maintenance counters of a [`DiskWalkStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStoreStats {
    /// Heap pages re-rendered from memory across all checkpoints.
    pub pages_rewritten: u64,
    /// Heap pages carried byte-for-byte from the previous generation.
    pub pages_reused: u64,
    /// Segments whose on-disk slot was relocated to the heap tail.
    pub relocations: u64,
    /// Whole-heap file compaction passes.
    pub file_compactions: u64,
    /// Live steps repacked by file compactions.
    pub compaction_steps_moved: u64,
    /// Wall time spent in file compactions, in nanoseconds.
    pub compaction_nanos: u64,
}

/// A file-backed PageRank Store: resident reads, dirty-page-tracked writes, and
/// checkpoints that only re-encode what changed.
#[derive(Debug)]
pub struct DiskWalkStore {
    resident: WalkStore,
    /// On-disk slot layout, indexed by segment id (offsets/caps in steps).
    dir: Vec<FileSlot>,
    /// Slots with reserved heap space, keyed by their heap offset (regions are
    /// disjoint, so the predecessor lookup per page is unambiguous).
    by_offset: BTreeMap<u64, u32>,
    /// Heap length in steps (live + reserved + garbage).
    heap_len: u64,
    /// Live steps stored on disk (sum of slot lengths).
    live: u64,
    /// Garbage capacity abandoned by relocations.
    dead: u64,
    /// Heap pages whose bytes changed since the last checkpoint.
    dirty: BTreeSet<u32>,
    /// Set when no previous generation can serve clean pages (fresh store, or a file
    /// compaction moved everything).
    all_dirty: bool,
    /// The previous generation's walks section — the clean-page source.
    prev: Option<PagedWalks>,
    /// Heap image of the most recent encode, kept until [`after_checkpoint`] seeds
    /// the next generation's page cache with it (so write-back never re-reads pages
    /// it just wrote).
    ///
    /// [`after_checkpoint`]: PersistentWalkStore::after_checkpoint
    pending_heap: Option<Vec<u8>>,
    stats: DiskStoreStats,
}

impl DiskWalkStore {
    /// Creates an empty file-backed store for `node_count` nodes with `r` segments
    /// per node.  Until the first checkpoint there is no previous generation, so the
    /// first encode renders every page.
    pub fn new(node_count: usize, r: usize) -> Self {
        DiskWalkStore {
            resident: WalkStore::new(node_count, r),
            dir: vec![FileSlot::default(); node_count * r],
            by_offset: BTreeMap::new(),
            heap_len: 0,
            live: 0,
            dead: 0,
            dirty: BTreeSet::new(),
            all_dirty: true,
            prev: None,
            pending_heap: None,
            stats: DiskStoreStats::default(),
        }
    }

    /// Write-back and maintenance counters.
    pub fn stats(&self) -> DiskStoreStats {
        self.stats
    }

    /// Page-cache counters of the generation the store was opened from (zero for a
    /// store that was never opened from disk).
    pub fn pager_stats(&self) -> PagerStats {
        self.prev
            .as_ref()
            .map(|p| p.pager_stats())
            .unwrap_or_default()
    }

    /// Freezes an epoch-pinned, copy-on-write snapshot view of the resident image
    /// (see [`ppr_store::FrozenWalks`]) — the disk store serves queries exactly like
    /// the in-memory layouts.
    pub fn snapshot_view(&self, epoch: u64) -> ppr_store::FrozenWalks {
        ppr_store::FrozenWalks::from_index(&self.resident, epoch)
    }

    /// Current heap geometry as `(heap_len_steps, live_steps, garbage_steps)`.
    pub fn heap_geometry(&self) -> (u64, u64, u64) {
        (self.heap_len, self.live, self.dead)
    }

    /// Heap pages currently marked dirty (all pages when no generation exists yet).
    pub fn dirty_pages(&self) -> usize {
        if self.all_dirty {
            self.page_count() as usize
        } else {
            self.dirty.len()
        }
    }

    fn page_count(&self) -> u32 {
        (self.heap_len * 4).div_ceil(WALKS_PAGE_SIZE as u64) as u32
    }

    fn mark_dirty_region(&mut self, offset: u64, cap: u32) {
        if cap == 0 {
            return;
        }
        let first = (offset / STEPS_PER_PAGE) as u32;
        let last = ((offset + cap as u64 - 1) / STEPS_PER_PAGE) as u32;
        for page in first..=last {
            self.dirty.insert(page);
        }
    }

    fn update_file_slot(&mut self, slot: usize, new_len: usize) {
        let s = self.dir[slot];
        self.live = self.live - s.len as u64 + new_len as u64;
        if (new_len as u64) <= s.cap as u64 {
            self.dir[slot].len = new_len as u32;
            if new_len > 0 {
                self.mark_dirty_region(s.offset, s.cap);
            }
            return;
        }
        if s.cap > 0 {
            self.by_offset.remove(&s.offset);
            self.dead += s.cap as u64;
        }
        // Mirror the arena's growth rule: first fills get a tight reservation,
        // regrowth doubles, so hot slots relocate O(1) times over their lifetime.
        let cap = if s.cap == 0 {
            file_reservation(new_len)
        } else {
            file_reservation(new_len * 2)
        };
        let offset = self.heap_len;
        self.heap_len += cap as u64;
        self.dir[slot] = FileSlot {
            offset,
            len: new_len as u32,
            cap,
        };
        self.by_offset.insert(offset, slot as u32);
        self.mark_dirty_region(offset, cap);
        self.stats.relocations += 1;
        self.maybe_compact_file();
    }

    /// Half-dead rule on the file heap, mirroring the in-memory arena: when garbage
    /// capacity exceeds the live data, repack every slot tight.  All pages become
    /// dirty — the cost the counters make visible.
    fn maybe_compact_file(&mut self) {
        if self.dead <= self.live.max(8 * self.dir.len() as u64) {
            return;
        }
        let started = std::time::Instant::now();
        self.by_offset.clear();
        let mut offset = 0u64;
        for (slot, s) in self.dir.iter_mut().enumerate() {
            let cap = file_reservation(s.len as usize);
            s.cap = cap;
            if cap == 0 {
                s.offset = 0;
                continue;
            }
            s.offset = offset;
            self.by_offset.insert(offset, slot as u32);
            offset += cap as u64;
        }
        self.heap_len = offset;
        self.dead = 0;
        self.dirty.clear();
        self.all_dirty = true;
        self.stats.file_compactions += 1;
        self.stats.compaction_steps_moved += self.live;
        self.stats.compaction_nanos += started.elapsed().as_nanos() as u64;
    }

    /// Renders the bytes of heap page `page` from the resident image: every slot
    /// region intersecting the page contributes its path bytes, everything else is
    /// the filler word.
    fn render_page(&self, page: u32, out: &mut [u8]) {
        debug_assert_eq!(out.len(), WALKS_PAGE_SIZE);
        out.fill(0xFF);
        debug_assert_eq!(FILLER_WORD, u32::MAX);
        let start_step = page as u64 * STEPS_PER_PAGE;
        let end_step = start_step + STEPS_PER_PAGE;
        // Slot regions are disjoint, so at most one region starting before the page
        // can reach into it; the rest start within the page.
        let before = self
            .by_offset
            .range(..start_step)
            .next_back()
            .map(|(_, &slot)| slot);
        let within = self.by_offset.range(start_step..end_step).map(|(_, &s)| s);
        for slot in before.into_iter().chain(within) {
            let s = self.dir[slot as usize];
            if s.len == 0 || s.offset + (s.len as u64) <= start_step || s.offset >= end_step {
                continue;
            }
            let path = self.resident.segment_path(SegmentId(slot));
            let from = s.offset.max(start_step);
            let to = (s.offset + s.len as u64).min(end_step);
            for step in from..to {
                let word = path[(step - s.offset) as usize].0;
                let at = ((step - start_step) * 4) as usize;
                out[at..at + 4].copy_from_slice(&word.to_le_bytes());
            }
        }
    }

    fn check_file_layout(&self) -> Result<(), String> {
        let mut expected_live = 0u64;
        let mut reserved = 0u64;
        for (slot, s) in self.dir.iter().enumerate() {
            let resident_len = self.resident.segment_len(SegmentId(slot as u32)) as u32;
            if s.len != resident_len {
                return Err(format!(
                    "slot {slot} stores {} steps on disk but {resident_len} in memory",
                    s.len
                ));
            }
            if s.cap == 0 && s.len != 0 {
                return Err(format!("slot {slot} has data but no reservation"));
            }
            expected_live += s.len as u64;
            reserved += s.cap as u64;
        }
        if expected_live != self.live {
            return Err(format!(
                "live counter {} disagrees with the directory ({expected_live})",
                self.live
            ));
        }
        if reserved + self.dead != self.heap_len {
            return Err(format!(
                "heap accounting off: {reserved} reserved + {} dead != {} total",
                self.dead, self.heap_len
            ));
        }
        let mut prev_end = 0u64;
        for (&offset, &slot) in &self.by_offset {
            if offset < prev_end {
                return Err(format!("slot {slot} overlaps its predecessor"));
            }
            // Checked: a crafted directory entry must be rejected, not overflow.
            prev_end = offset
                .checked_add(self.dir[slot as usize].cap as u64)
                .ok_or_else(|| format!("slot {slot} region overflows the address space"))?;
        }
        if prev_end > self.heap_len {
            return Err("slot regions exceed the heap".to_string());
        }
        Ok(())
    }
}

impl ppr_store::WalkIndexView for DiskWalkStore {
    #[inline]
    fn r(&self) -> usize {
        self.resident.r()
    }

    #[inline]
    fn node_count(&self) -> usize {
        self.resident.node_count()
    }

    #[inline]
    fn segment_path(&self, id: SegmentId) -> &[NodeId] {
        self.resident.segment_path(id)
    }

    #[inline]
    fn source_of(&self, id: SegmentId) -> NodeId {
        self.resident.source_of(id)
    }

    fn segment_ids_of(&self, node: NodeId) -> impl Iterator<Item = SegmentId> + '_ {
        self.resident.segment_ids_of(node)
    }

    #[inline]
    fn visit_count(&self, node: NodeId) -> u64 {
        self.resident.visit_count(node)
    }

    fn visit_counts(&self) -> Vec<u64> {
        self.resident.visit_counts().to_vec()
    }

    #[inline]
    fn total_visits(&self) -> u64 {
        self.resident.total_visits()
    }
}

impl WalkIndex for DiskWalkStore {
    fn segments_visiting(&self, node: NodeId) -> impl Iterator<Item = (SegmentId, u32)> + '_ {
        self.resident.segments_visiting(node)
    }

    fn arena_stats(&self) -> ArenaStats {
        self.resident.arena_stats()
    }
}

impl WalkIndexMut for DiskWalkStore {
    fn ensure_nodes(&mut self, n: usize) {
        self.resident.ensure_nodes(n);
        let slots = self.resident.node_count() * self.resident.r();
        if slots > self.dir.len() {
            self.dir.resize(slots, FileSlot::default());
        }
    }

    fn set_segment(&mut self, id: SegmentId, path: &[NodeId]) {
        self.resident.set_segment(id, path);
        self.update_file_slot(id.index(), path.len());
    }

    fn clear_segment(&mut self, id: SegmentId) {
        self.resident.clear_segment(id);
        self.update_file_slot(id.index(), 0);
    }

    fn check_consistency(&self) -> Result<(), String> {
        self.resident.check_consistency()?;
        self.check_file_layout()
    }

    /// The knob tunes the resident image's in-memory arena; the on-disk heap keeps
    /// its own half-dead file-compaction rule (a separate cost model: file
    /// compaction rewrites every page).
    fn set_compaction_threshold(&mut self, ratio: f64) {
        self.resident.set_compaction_threshold(ratio);
    }
}

impl PersistentWalkStore for DiskWalkStore {
    /// Page-granular write-back: dirty pages are rendered from the resident image,
    /// clean pages are copied byte-for-byte out of the previous generation's file
    /// through the page cache.
    fn encode_walks(&mut self) -> PersistResult<Vec<u8>> {
        let page_count = self.page_count();
        let mut heap = vec![0xFFu8; page_count as usize * WALKS_PAGE_SIZE];
        let prev_pages = self
            .prev
            .as_ref()
            .map(|p| p.header().page_count())
            .unwrap_or(0);
        for page in 0..page_count {
            let range = page as usize * WALKS_PAGE_SIZE..(page as usize + 1) * WALKS_PAGE_SIZE;
            let reusable = !self.all_dirty && !self.dirty.contains(&page) && page < prev_pages;
            if reusable {
                let prev = self.prev.as_mut().expect("prev_pages > 0 implies a source");
                heap[range].copy_from_slice(prev.read_page(page)?);
                self.stats.pages_reused += 1;
            } else {
                self.render_page(page, &mut heap[range]);
                self.stats.pages_rewritten += 1;
            }
        }
        let header = WalksHeader {
            r: self.resident.r() as u32,
            shard_count: 1,
            node_count: self.resident.node_count() as u64,
            slot_count: self.dir.len() as u64,
            heap_len: self.heap_len,
            page_size: WALKS_PAGE_SIZE as u32,
        };
        let postings = crate::layout::encode_postings(&self.resident);
        let payload = assemble_walks_payload(&header, &self.dir, &postings, &heap);
        self.pending_heap = Some(heap);
        Ok(payload)
    }

    fn decode_walks(mut walks: PagedWalks) -> PersistResult<Self> {
        let header = *walks.header();
        let resident = walks.decode_flat_store()?;

        let dir = walks.dir().to_vec();
        let mut by_offset = BTreeMap::new();
        let mut live = 0u64;
        let mut reserved = 0u64;
        for (slot, s) in dir.iter().enumerate() {
            live += s.len as u64;
            reserved += s.cap as u64;
            if s.cap > 0 && by_offset.insert(s.offset, slot as u32).is_some() {
                return Err(corrupt(format!("two slots share heap offset {}", s.offset)));
            }
        }
        let dead = header
            .heap_len
            .checked_sub(reserved)
            .ok_or_else(|| corrupt("slot reservations exceed the heap"))?;
        let store = DiskWalkStore {
            resident,
            dir,
            by_offset,
            heap_len: header.heap_len,
            live,
            dead,
            dirty: BTreeSet::new(),
            all_dirty: false,
            prev: Some(walks),
            pending_heap: None,
            stats: DiskStoreStats::default(),
        };
        store.check_file_layout().map_err(corrupt)?;
        Ok(store)
    }

    fn after_checkpoint(&mut self, snap_path: &Path) -> PersistResult<()> {
        let mut next = PagedWalks::open(snap_path)?;
        // Keep the pages we just wrote warm: the next write-back's clean pages then
        // copy from memory instead of re-reading (and re-validating) the file.
        if let Some(heap) = self.pending_heap.take() {
            next.preload_heap(&heap);
        }
        self.prev = Some(next);
        self.dirty.clear();
        self.all_dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{SnapshotWriter, SECTION_WALKS};
    use crate::tempdir::TempDir;
    use ppr_store::WalkIndexView;

    #[test]
    fn snapshot_view_freezes_the_resident_image() {
        let mut store = DiskWalkStore::new(6, 2);
        store.set_segment(SegmentId::new(NodeId(2), 1, 2), &path_of(&[2, 5, 0]));
        let view = store.snapshot_view(7);
        assert_eq!(view.epoch(), 7);
        assert_eq!(view.node_count(), 6);
        assert_eq!(view.total_visits(), store.total_visits());
        assert_eq!(
            view.segment_path(SegmentId::new(NodeId(2), 1, 2)),
            store.segment_path(SegmentId::new(NodeId(2), 1, 2))
        );
    }

    fn path_of(nodes: &[u32]) -> Vec<NodeId> {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    fn checkpoint_to(store: &mut DiskWalkStore, path: &Path) {
        let payload = store.encode_walks().unwrap();
        let mut w = SnapshotWriter::new();
        w.add_section(SECTION_WALKS, payload);
        w.write_to(path).unwrap();
        store.after_checkpoint(path).unwrap();
    }

    #[test]
    fn behaves_exactly_like_the_flat_store() {
        let mut disk = DiskWalkStore::new(6, 2);
        let mut flat = WalkStore::new(6, 2);
        let writes: &[(u32, usize, &[u32])] = &[
            (0, 0, &[0, 3, 4]),
            (5, 1, &[5, 5, 2]),
            (0, 0, &[0, 1]),
            (3, 1, &[3, 0, 3, 0]),
            (5, 1, &[]),
        ];
        for &(node, slot, p) in writes {
            let id = SegmentId::new(NodeId(node), slot, 2);
            disk.set_segment(id, &path_of(p));
            flat.set_segment(id, &path_of(p));
        }
        assert_eq!(disk.visit_counts(), WalkIndexView::visit_counts(&flat));
        assert_eq!(WalkIndexView::total_visits(&disk), flat.total_visits());
        for slot in 0..12u32 {
            assert_eq!(
                WalkIndexView::segment_path(&disk, SegmentId(slot)),
                flat.segment_path(SegmentId(slot))
            );
        }
        assert!(WalkIndexMut::check_consistency(&disk).is_ok());
    }

    #[test]
    fn checkpoint_round_trips_through_the_snapshot() {
        let tmp = TempDir::new("disk-roundtrip");
        let snap = tmp.path().join("snap-0.ppr");
        let mut store = DiskWalkStore::new(5, 1);
        for node in 0..5u32 {
            let id = SegmentId::new(NodeId(node), 0, 1);
            store.set_segment(id, &path_of(&[node, (node + 1) % 5]));
        }
        checkpoint_to(&mut store, &snap);

        let reopened = DiskWalkStore::decode_walks(PagedWalks::open(&snap).unwrap()).unwrap();
        assert_eq!(reopened.visit_counts(), store.visit_counts());
        assert_eq!(reopened.heap_geometry(), store.heap_geometry());
        for slot in 0..5u32 {
            assert_eq!(
                WalkIndexView::segment_path(&reopened, SegmentId(slot)),
                WalkIndexView::segment_path(&store, SegmentId(slot))
            );
        }
        assert!(WalkIndexMut::check_consistency(&reopened).is_ok());
        // Cold open faulted every heap page in through the cache.
        assert!(reopened.pager_stats().loads > 0);
    }

    #[test]
    fn second_checkpoint_reuses_clean_pages() {
        let tmp = TempDir::new("disk-reuse");
        // 4096 slots with ~5 steps each spread over many pages.
        let n = 2048usize;
        let mut store = DiskWalkStore::new(n, 1);
        for node in 0..n as u32 {
            let id = SegmentId::new(NodeId(node), 0, 1);
            store.set_segment(id, &path_of(&[node, (node + 1) % n as u32, node]));
        }
        let snap0 = tmp.path().join("snap-0.ppr");
        checkpoint_to(&mut store, &snap0);
        let after_first = store.stats();
        assert!(
            after_first.pages_rewritten > 4,
            "first checkpoint renders all"
        );
        assert_eq!(after_first.pages_reused, 0);

        // Touch one segment; the next checkpoint only re-renders its page(s).
        store.set_segment(SegmentId(7), &path_of(&[7, 8]));
        assert_eq!(store.dirty_pages(), 1);
        let snap1 = tmp.path().join("snap-1.ppr");
        checkpoint_to(&mut store, &snap1);
        let after_second = store.stats();
        let rewritten = after_second.pages_rewritten - after_first.pages_rewritten;
        assert_eq!(rewritten, 1, "only the touched page is re-rendered");
        assert!(after_second.pages_reused >= 4);

        // And the reused-page snapshot still decodes to the exact store.
        let reopened = DiskWalkStore::decode_walks(PagedWalks::open(&snap1).unwrap()).unwrap();
        assert_eq!(reopened.visit_counts(), store.visit_counts());
        assert_eq!(
            WalkIndexView::segment_path(&reopened, SegmentId(7)),
            path_of(&[7, 8]).as_slice()
        );
        assert!(WalkIndexMut::check_consistency(&reopened).is_ok());
    }

    #[test]
    fn outgrown_slots_relocate_and_eventually_compact_the_file() {
        let mut store = DiskWalkStore::new(4, 1);
        // Lengths crossing successive power-of-two boundaries force relocations whose
        // abandoned reservations pile up past the live data (same shape as the
        // in-memory arena's compaction test).
        for &len in &[9usize, 17, 65, 257] {
            for node in 0..4u32 {
                let mut p = vec![NodeId(node)];
                p.extend(std::iter::repeat_n(NodeId((node + 1) % 4), len - 1));
                store.set_segment(SegmentId::new(NodeId(node), 0, 1), &p);
            }
        }
        let stats = store.stats();
        assert!(stats.relocations > 0, "growth must relocate");
        assert!(
            stats.file_compactions > 0,
            "half-dead rule must fire: {stats:?}"
        );
        assert!(stats.compaction_steps_moved > 0);
        assert!(WalkIndexMut::check_consistency(&store).is_ok());
        let (heap, live, dead) = store.heap_geometry();
        assert!(dead <= live.max(8 * 4), "compaction keeps garbage bounded");
        assert!(heap >= live);
    }

    #[test]
    fn ensure_nodes_grows_the_directory() {
        let mut store = DiskWalkStore::new(2, 2);
        store.ensure_nodes(5);
        assert_eq!(WalkIndexView::node_count(&store), 5);
        let id = SegmentId::new(NodeId(4), 1, 2);
        store.set_segment(id, &path_of(&[4, 0]));
        assert_eq!(WalkIndexView::visit_count(&store, NodeId(4)), 1);
        assert!(WalkIndexMut::check_consistency(&store).is_ok());
    }
}
