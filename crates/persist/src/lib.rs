//! Durable storage for the `fast-ppr` workspace (`ppr-persist`).
//!
//! The paper's premise is that Monte Carlo walk segments are *stored state*: they are
//! generated once at `nR/ε` cost and then maintained incrementally as edges arrive.
//! That premise is only real if the state survives the process — otherwise every
//! restart repays the full initialization cost that incremental maintenance exists
//! to avoid.  This crate is the durability layer that closes that gap:
//!
//! * [`snapshot`] — a versioned, sectioned, checksummed **snapshot container**,
//!   written atomically per generation (temp file + rename), holding the engine
//!   metadata, the Social Store's graph ([`graph`]), and the PageRank Store's walk
//!   data in a paged layout aligned to arena segments ([`layout`]);
//! * [`wal`] — an append-only, CRC-framed **write-ahead log** of the exact
//!   `&[Edge]` batches the engines consume, fsynced per batch, with torn-tail
//!   truncation on recovery.  Because the repair pipeline is deterministic, replaying
//!   the log over its snapshot reproduces the engine **bit-identically**;
//! * [`disk`] — [`disk::DiskWalkStore`], a file-backed `WalkIndex`/`WalkIndexMut`
//!   implementation whose checkpoints re-encode only dirty heap pages and stream
//!   clean pages out of the previous generation through a page cache ([`pager`]);
//! * [`dir`] — the generation-numbered store directory with its atomically published
//!   `CURRENT` pointer and previous-generation fallback;
//! * [`lock`] — the `LOCK` file enforcing the single-writer-per-directory contract
//!   across processes, with stale-lock stealing after a crash;
//! * [`shim`] — an injectable I/O shim on the WAL/snapshot write paths, the seam
//!   the scenario chaos harness uses to inject slow-disk stalls (timing faults
//!   that must never change a bit of what is written).
//!
//! The engine-facing `open`/`checkpoint` APIs live in `ppr-core::durable`, built on
//! the [`layout::PersistentWalkStore`] trait this crate implements for the flat,
//! sharded, and disk-backed store layouts.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crc;
pub mod dir;
pub mod disk;
pub mod graph;
pub mod io;
pub mod layout;
pub mod lock;
pub mod pager;
pub mod shim;
pub mod snapshot;
pub mod telem;
pub mod tempdir;
pub mod wal;

pub use crc::crc32;
pub use dir::StoreDir;
pub use disk::{set_thread_page_budget, DiskStoreStats, DiskWalkStore, PageBudget, ResidencyStats};
pub use io::{PersistError, PersistResult};
pub use layout::{PagedWalks, PersistentWalkStore};
pub use lock::StoreLock;
pub use pager::PagerStats;
pub use shim::{IoOp, IoShim, ShimGuard, SlowDisk};
pub use snapshot::{SnapshotFile, SnapshotWriter};
pub use tempdir::TempDir;
pub use wal::{GroupCommit, WalOp, WalRecord, WalStats, WalWriter};
