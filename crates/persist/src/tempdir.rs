//! A minimal scoped temporary directory (the workspace builds hermetically, so the
//! usual `tempfile` crate is not available).
//!
//! Used by this crate's tests, the workspace's durability test suites, and the
//! `recover-smoke` crash harness.  Directories are created under the OS temp root
//! with a process-unique suffix and removed on drop; set `PPR_KEEP_TMP=1` to keep
//! them around for post-mortem inspection.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the OS temp root, deleted when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh, empty directory whose name starts with `prefix`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created — temp-dir availability is an
    /// environment precondition for the callers (tests and smoke binaries), not a
    /// recoverable condition.
    pub fn new(prefix: &str) -> Self {
        let unique = format!(
            "fast-ppr-{prefix}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = std::env::temp_dir().join(unique);
        std::fs::create_dir_all(&path).expect("failed to create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if std::env::var_os("PPR_KEEP_TMP").is_none() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let dir = TempDir::new("unit");
            kept = dir.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(kept.join("f"), b"x").unwrap();
        }
        assert!(!kept.exists(), "dropped TempDir must remove its tree");
    }

    #[test]
    fn two_dirs_never_collide() {
        let a = TempDir::new("unit");
        let b = TempDir::new("unit");
        assert_ne!(a.path(), b.path());
    }
}
