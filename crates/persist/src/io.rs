//! Byte-level codec helpers and the error type shared by every persistent format.
//!
//! All on-disk integers are **little-endian** and written through [`ByteWriter`] /
//! read back through [`ByteReader`], so the format is defined in exactly one place per
//! record type and a short read or out-of-range length is always a typed
//! [`PersistError::Corrupt`] instead of a panic.

use std::fmt;

/// Errors surfaced by the durability layer.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure (open, read, write, fsync, rename).
    Io(std::io::Error),
    /// Stored bytes failed validation: a checksum mismatch, a short read, an
    /// impossible length.  Data signalled as corrupt is never partially applied.
    Corrupt(String),
    /// The bytes are intact but describe something this build cannot load: an unknown
    /// format version, a store-layout mismatch, an invalid configuration value.
    Format(String),
    /// Another live writer process holds the store directory's lock file.  The store
    /// is healthy — retry once the other writer exits (see [`crate::lock`]).
    Locked(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            PersistError::Format(msg) => write!(f, "unsupported format: {msg}"),
            PersistError::Locked(msg) => write!(f, "store locked: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Result alias for the durability layer.
pub type PersistResult<T> = Result<T, PersistError>;

/// Shorthand for building a [`PersistError::Corrupt`].
pub fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

/// Shorthand for building a [`PersistError::Format`].
pub fn format_err(msg: impl Into<String>) -> PersistError {
    PersistError::Format(msg.into())
}

/// An append-only little-endian encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Creates a writer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the encoded buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A little-endian decoder over a byte slice; every read is bounds-checked.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`PersistError::Corrupt`] unless every byte has been consumed.
    pub fn expect_end(&self, what: &str) -> PersistResult<()> {
        if self.remaining() != 0 {
            return Err(corrupt(format!(
                "{what}: {} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Reads `len` raw bytes.
    pub fn get_bytes(&mut self, len: usize) -> PersistResult<&'a [u8]> {
        if self.remaining() < len {
            return Err(corrupt(format!(
                "short read: wanted {len} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> PersistResult<u8> {
        Ok(self.get_bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> PersistResult<u32> {
        Ok(u32::from_le_bytes(self.get_bytes(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> PersistResult<u64> {
        Ok(u64::from_le_bytes(self.get_bytes(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` written by [`ByteWriter::put_f64`].
    pub fn get_f64(&mut self) -> PersistResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that do not fit.
    pub fn get_len(&mut self) -> PersistResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| corrupt(format!("length {v} exceeds the address space")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_scalar() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(0.2);
        w.put_bytes(b"tail");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), 0.2);
        assert_eq!(r.get_bytes(4).unwrap(), b"tail");
        assert!(r.expect_end("test").is_ok());
    }

    #[test]
    fn short_reads_are_corrupt_not_panics() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(matches!(r.get_u32(), Err(PersistError::Corrupt(_))));
        // The failed read consumed nothing; smaller reads still succeed.
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.remaining(), 2);
        assert!(r.expect_end("test").is_err());
    }

    #[test]
    fn error_display_mentions_the_kind() {
        assert!(corrupt("bad crc").to_string().contains("corrupt"));
        assert!(format_err("v9").to_string().contains("unsupported"));
        let io: PersistError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("I/O"));
    }
}
