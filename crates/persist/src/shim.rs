//! Injectable I/O shim: failpoint-style observation hooks on the durability hot
//! paths (WAL appends and syncs, snapshot writes).
//!
//! The scenario chaos harness (`ppr-scenario`) needs to inject *slow-disk stalls*
//! into a running durable engine without changing a single bit of what the engine
//! writes or reads — stalls move timing, never data, and the differential oracles
//! assert exactly that.  This module is the seam: the WAL writer and the snapshot
//! writer call `notify` immediately before each physical write/sync, and any
//! number of installed [`IoShim`]s observe the call (counting it, sleeping in it,
//! or both) before the I/O proceeds.
//!
//! The registry is process-global but **additive**: [`install`] pushes a shim and
//! returns a [`ShimGuard`] that removes exactly that shim on drop, so concurrent
//! tests can each install their own shim without clobbering one another.  With no
//! shims installed, `notify` is a single relaxed atomic load — the production
//! hot path pays nothing.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// The durability operation about to be performed when a shim is notified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A WAL record frame is about to be written.
    WalAppend,
    /// A WAL `fdatasync` is about to run (fsync-on-batch contract).
    WalSync,
    /// A snapshot generation file is about to be written (atomic tmp + rename).
    SnapshotWrite,
}

/// An installed observer of durability I/O.  Called synchronously on the I/O
/// thread immediately before the operation; sleeping here stalls the writer,
/// which is the point of the slow-disk fault.
pub trait IoShim: Send + Sync {
    /// Observes one imminent operation of `bytes` payload bytes (0 for syncs).
    fn before_io(&self, op: IoOp, bytes: usize);
}

/// Count of installed shims, readable without the registry lock so the no-shim
/// fast path is one atomic load.
static INSTALLED: AtomicUsize = AtomicUsize::new(0);

type ShimRegistry = Mutex<Vec<(u64, Arc<dyn IoShim>)>>;

fn registry() -> &'static ShimRegistry {
    static REGISTRY: OnceLock<ShimRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Installs `shim` into the process-global registry.  Every durability I/O in the
/// process notifies it until the returned [`ShimGuard`] is dropped.
pub fn install(shim: Arc<dyn IoShim>) -> ShimGuard {
    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    let mut shims = registry().lock().expect("I/O shim registry poisoned");
    shims.push((token, shim));
    INSTALLED.store(shims.len(), Ordering::Release);
    ShimGuard { token }
}

/// Removes its shim (and only its shim) from the registry on drop.
#[derive(Debug)]
pub struct ShimGuard {
    token: u64,
}

impl Drop for ShimGuard {
    fn drop(&mut self) {
        let mut shims = registry().lock().expect("I/O shim registry poisoned");
        shims.retain(|&(token, _)| token != self.token);
        INSTALLED.store(shims.len(), Ordering::Release);
    }
}

/// Notifies every installed shim of an imminent operation.  Free when nothing is
/// installed.
pub(crate) fn notify(op: IoOp, bytes: usize) {
    if INSTALLED.load(Ordering::Acquire) == 0 {
        return;
    }
    // Clone the Arcs out so shims run without holding the registry lock: a shim
    // that sleeps (the slow-disk fault) must not block install/uninstall.
    let shims: Vec<Arc<dyn IoShim>> = registry()
        .lock()
        .expect("I/O shim registry poisoned")
        .iter()
        .map(|(_, shim)| Arc::clone(shim))
        .collect();
    for shim in shims {
        shim.before_io(op, bytes);
    }
}

/// The slow-disk fault: stalls every `stall_every`-th operation by a fixed
/// duration and counts everything it observes.  Stalls shift *timing* only — the
/// bytes written are untouched — so a run under this shim must stay bit-identical
/// to one without it; the counters let tests assert the stalls actually landed on
/// the durability path.
#[derive(Debug)]
pub struct SlowDisk {
    stall_every: u64,
    stall: Duration,
    ops: AtomicU64,
    stalls: AtomicU64,
    bytes: AtomicU64,
}

impl SlowDisk {
    /// A shim that sleeps `stall` before every `stall_every`-th operation.
    pub fn new(stall_every: u64, stall: Duration) -> Arc<Self> {
        Arc::new(SlowDisk {
            stall_every: stall_every.max(1),
            stall,
            ops: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        })
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Stalls actually injected so far.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Payload bytes observed so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl IoShim for SlowDisk {
    fn before_io(&self, _op: IoOp, bytes: usize) {
        let seen = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        if seen % self.stall_every == 0 {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.stall);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notify_reaches_every_installed_shim_and_stops_at_guard_drop() {
        let a = SlowDisk::new(1, Duration::ZERO);
        let b = SlowDisk::new(1, Duration::ZERO);
        let guard_a = install(a.clone());
        let guard_b = install(b.clone());
        notify(IoOp::WalAppend, 64);
        assert_eq!((a.ops(), b.ops()), (1, 1));
        assert_eq!((a.bytes(), b.bytes()), (64, 64));
        drop(guard_a);
        notify(IoOp::WalSync, 0);
        assert_eq!(a.ops(), 1, "a dropped guard must stop notifications");
        assert_eq!(b.ops(), 2, "sibling shims survive another guard's drop");
        drop(guard_b);
        notify(IoOp::SnapshotWrite, 128);
        assert_eq!(b.ops(), 2);
    }

    #[test]
    fn slow_disk_stalls_every_nth_operation() {
        let shim = SlowDisk::new(3, Duration::ZERO);
        for _ in 0..10 {
            shim.before_io(IoOp::WalAppend, 8);
        }
        assert_eq!(shim.ops(), 10);
        assert_eq!(shim.stalls(), 3, "ops 3, 6, 9 stall");
        assert_eq!(shim.bytes(), 80);
    }

    #[test]
    fn wal_appends_notify_the_shim() {
        let dir = crate::tempdir::TempDir::new("shim-wal");
        let shim = SlowDisk::new(1, Duration::ZERO);
        let _guard = install(shim.clone());
        let path = dir.path().join("wal.log");
        let mut writer = crate::wal::WalWriter::create(&path).unwrap();
        writer
            .append(
                0,
                crate::wal::WalOp::Arrivals,
                &[ppr_graph::Edge::new(0, 1)],
            )
            .unwrap();
        // One append frame + one fdatasync.
        assert!(shim.ops() >= 2, "append must notify write and sync");
        assert!(shim.bytes() > 0);
    }
}
