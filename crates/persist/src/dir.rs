//! The on-disk store directory: generations, the `CURRENT` pointer, and pruning.
//!
//! A durable engine owns one directory:
//!
//! ```text
//! <root>/CURRENT          the active generation number, published atomically
//! <root>/snap-<gen>.ppr   immutable snapshot of generation <gen>
//! <root>/wal-<gen>.log    the edge batches applied since snapshot <gen>
//! ```
//!
//! A checkpoint writes `snap-<gen+1>.ppr`, starts a fresh `wal-<gen+1>.log`, and only
//! then flips `CURRENT` — so every observable state of the directory is recoverable.
//! The previous generation is kept until the *next* checkpoint: if the current
//! snapshot is found corrupt (bit rot), recovery falls back to generation `gen - 1`
//! and replays **both** logs, using the record sequence numbers to skip what the
//! older snapshot already contains.

use crate::io::{corrupt, PersistResult};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Handle to a durable store directory.
#[derive(Debug, Clone)]
pub struct StoreDir {
    root: PathBuf,
}

impl StoreDir {
    /// Initialises a fresh store directory (creating it if needed).  Fails if the
    /// directory is already initialised — an existing store must be `open`ed, never
    /// silently re-created.
    pub fn init(root: impl Into<PathBuf>) -> PersistResult<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let dir = StoreDir { root };
        if dir.current_path().exists() {
            return Err(corrupt(format!(
                "{} is already an initialised store directory",
                dir.root.display()
            )));
        }
        Ok(dir)
    }

    /// Opens an existing store directory.
    pub fn open(root: impl Into<PathBuf>) -> PersistResult<Self> {
        let root = root.into();
        let dir = StoreDir { root };
        if !dir.current_path().exists() {
            return Err(corrupt(format!(
                "{} is not a store directory (no CURRENT file)",
                dir.root.display()
            )));
        }
        Ok(dir)
    }

    /// The directory's root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn current_path(&self) -> PathBuf {
        self.root.join("CURRENT")
    }

    /// Path of generation `gen`'s snapshot file.
    pub fn snapshot_path(&self, gen: u64) -> PathBuf {
        self.root.join(format!("snap-{gen:06}.ppr"))
    }

    /// Path of generation `gen`'s WAL file.
    pub fn wal_path(&self, gen: u64) -> PathBuf {
        self.root.join(format!("wal-{gen:06}.log"))
    }

    /// Reads the active generation from `CURRENT`.
    pub fn current_gen(&self) -> PersistResult<u64> {
        let text = std::fs::read_to_string(self.current_path())?;
        text.trim()
            .parse()
            .map_err(|_| corrupt(format!("CURRENT holds {text:?}, not a generation number")))
    }

    /// Atomically publishes `gen` as the active generation (temp sibling + rename +
    /// directory fsync), the commit point of a checkpoint.
    pub fn publish_gen(&self, gen: u64) -> PersistResult<()> {
        let tmp = self.root.join("CURRENT.tmp");
        {
            let mut file = File::create(&tmp)?;
            writeln!(file, "{gen}")?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, self.current_path())?;
        if let Ok(dir) = File::open(&self.root) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    /// Removes snapshot and WAL files of every generation below `keep_from`
    /// (best-effort: pruning failures never fail a checkpoint).
    pub fn prune_generations_below(&self, keep_from: u64) {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let gen = name
                .strip_prefix("snap-")
                .and_then(|s| s.strip_suffix(".ppr"))
                .or_else(|| {
                    name.strip_prefix("wal-")
                        .and_then(|s| s.strip_suffix(".log"))
                })
                .and_then(|g| g.parse::<u64>().ok());
            if let Some(gen) = gen {
                if gen < keep_from {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn init_open_publish_cycle() {
        let tmp = TempDir::new("storedir");
        let root = tmp.path().join("store");
        let dir = StoreDir::init(&root).unwrap();
        assert!(StoreDir::open(&root).is_err(), "no CURRENT yet");
        dir.publish_gen(0).unwrap();
        assert_eq!(dir.current_gen().unwrap(), 0);
        dir.publish_gen(7).unwrap();
        assert_eq!(StoreDir::open(&root).unwrap().current_gen().unwrap(), 7);
        assert!(StoreDir::init(&root).is_err(), "re-init must fail");
    }

    #[test]
    fn prune_keeps_recent_generations() {
        let tmp = TempDir::new("storedir-prune");
        let dir = StoreDir::init(tmp.path().join("s")).unwrap();
        for gen in 0..4u64 {
            std::fs::write(dir.snapshot_path(gen), b"s").unwrap();
            std::fs::write(dir.wal_path(gen), b"w").unwrap();
        }
        dir.prune_generations_below(2);
        for gen in 0..2u64 {
            assert!(!dir.snapshot_path(gen).exists());
            assert!(!dir.wal_path(gen).exists());
        }
        for gen in 2..4u64 {
            assert!(dir.snapshot_path(gen).exists());
            assert!(dir.wal_path(gen).exists());
        }
    }

    #[test]
    fn garbage_current_is_corrupt() {
        let tmp = TempDir::new("storedir-garbage");
        let dir = StoreDir::init(tmp.path().join("s")).unwrap();
        std::fs::write(tmp.path().join("s/CURRENT"), "not-a-number\n").unwrap();
        assert!(dir.current_gen().is_err());
    }
}
