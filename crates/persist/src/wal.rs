//! The edge-event write-ahead log: an append-only file of CRC-framed arrival and
//! deletion batches.
//!
//! Every record carries exactly the `&[Edge]` batch an engine's `apply_arrivals` /
//! `apply_deletions` call consumes, plus a monotone sequence number.  Because the
//! repair pipeline is deterministic (split RNG streams per `(batch, pivot, segment)`),
//! replaying the records of a log over the snapshot they follow reproduces the
//! engine's state **bit-identically** — the WAL never needs to store any effect of a
//! batch, only the batch itself.
//!
//! # Framing and durability
//!
//! ```text
//! file   := header record*
//! header := magic "PPRWAL01" | version u32 | crc u32 (over magic+version)
//! record := body_len u32 | body_crc u32 | body
//! body   := seq u64 | kind u8 (1 = arrivals, 2 = deletions) | count u32 | (u32, u32)*count
//! ```
//!
//! Appends write the full frame and then (by default) `fdatasync` before returning,
//! so a batch acknowledged by the engine survives power loss — this is the
//! fsync-on-batch contract; [`WalWriter::set_fsync`] can relax it for bulk loads.
//!
//! A crash mid-append leaves a **torn tail**: a partial frame, or a frame whose CRC
//! does not match.  [`read_records`] stops at the first invalid frame and reports the
//! byte offset of the last valid one, and [`WalWriter::open_truncating`] truncates the
//! file there before appending again — recovery keeps every fully synced batch and
//! cleanly drops the one that was mid-write, which is exactly the at-most-one-batch
//! loss window the fsync contract promises.

use crate::crc::crc32;
use crate::io::{corrupt, format_err, ByteReader, ByteWriter, PersistResult};
use ppr_graph::{Edge, NodeId};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const MAGIC: &[u8; 8] = b"PPRWAL01";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 8 + 4 + 4;

/// The kind of edge batch a WAL record replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// A batch for `apply_arrivals`.
    Arrivals,
    /// A batch for `apply_deletions` (or a per-edge `remove_edge` replay).
    Deletions,
}

impl WalOp {
    fn to_byte(self) -> u8 {
        match self {
            WalOp::Arrivals => 1,
            WalOp::Deletions => 2,
        }
    }

    fn from_byte(b: u8) -> PersistResult<Self> {
        match b {
            1 => Ok(WalOp::Arrivals),
            2 => Ok(WalOp::Deletions),
            other => Err(corrupt(format!("unknown WAL record kind {other}"))),
        }
    }
}

/// One durable edge batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone sequence number of the record within the engine's whole history
    /// (snapshots store the next expected value, so replay knows where to resume).
    pub seq: u64,
    /// Whether the batch is arrivals or deletions.
    pub op: WalOp,
    /// The edges of the batch, in the exact order the engine received them.
    pub edges: Vec<Edge>,
}

/// Encodes one record body from a borrowed batch.
fn encode_body(seq: u64, op: WalOp, edges: &[Edge]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(13 + edges.len() * 8);
    w.put_u64(seq);
    w.put_u8(op.to_byte());
    w.put_u32(edges.len() as u32);
    for edge in edges {
        w.put_u32(edge.source.0);
        w.put_u32(edge.target.0);
    }
    w.into_bytes()
}

impl WalRecord {
    fn decode(body: &[u8]) -> PersistResult<Self> {
        let mut r = ByteReader::new(body);
        let seq = r.get_u64()?;
        let op = WalOp::from_byte(r.get_u8()?)?;
        let count = r.get_u32()? as usize;
        if r.remaining() != count * 8 {
            return Err(corrupt(format!(
                "WAL record body holds {} bytes for {count} edges",
                r.remaining()
            )));
        }
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            let source = NodeId(r.get_u32()?);
            let target = NodeId(r.get_u32()?);
            edges.push(Edge { source, target });
        }
        Ok(WalRecord { seq, op, edges })
    }
}

/// Result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Every record with a valid frame, in file order.
    pub records: Vec<WalRecord>,
    /// Byte offset just past the last valid frame (the truncation point).
    pub valid_len: u64,
    /// `true` when bytes past `valid_len` existed but did not form a valid frame — a
    /// torn tail from a crash mid-append.
    pub torn_tail: bool,
}

/// Reads and validates every record of a WAL file.
///
/// Frames after the first invalid one are **not** inspected: a torn frame means the
/// writer died there, so nothing after it can be trusted (and the writer never starts
/// frame `k + 1` before frame `k` is fully written).
pub fn read_records(path: &Path) -> PersistResult<WalScan> {
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN as usize {
        return Err(corrupt("WAL file shorter than its header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt("bad WAL magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(format_err(format!(
            "WAL version {version}, expected {VERSION}"
        )));
    }
    let header_crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if header_crc != crc32(&bytes[..12]) {
        return Err(corrupt("WAL header checksum mismatch"));
    }

    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut torn_tail = false;
    while pos < bytes.len() {
        let Some(frame) = bytes.get(pos..pos + 8) else {
            torn_tail = true;
            break;
        };
        let body_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        let body_crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        let Some(body) = bytes.get(pos + 8..pos + 8 + body_len) else {
            torn_tail = true;
            break;
        };
        if crc32(body) != body_crc {
            torn_tail = true;
            break;
        }
        // A frame that checksums but does not parse is corruption, not tearing: the
        // writer only syncs well-formed bodies.
        records.push(WalRecord::decode(body)?);
        pos += 8 + body_len;
    }
    Ok(WalScan {
        records,
        valid_len: pos.min(bytes.len()) as u64,
        torn_tail,
    })
}

/// The state a [`GroupCommit`] handle shares with the [`WalWriter`] it was begun on:
/// a duplicated file handle (so a committer thread can `fdatasync` while the writer
/// keeps appending), the cumulative append count, and the durability watermark.
#[derive(Debug)]
struct GroupShared {
    /// A `try_clone`d handle onto the live WAL file.  `fdatasync` on a duplicate
    /// descriptor flushes the same kernel file object the writer appends through, so
    /// one sync covers every append that completed before it.  Rebound under the lock
    /// when a checkpoint rotates the log.
    file: Mutex<File>,
    /// Records appended through the owning writer since group commit began
    /// (monotone; carried across WAL rotations).
    appended: AtomicU64,
    /// Watermark: every append numbered `<= durable` has been covered by a sync.
    durable: AtomicU64,
    /// `fdatasync` calls actually issued.
    fsyncs: AtomicU64,
    /// Appends covered by those syncs (`synced - fsyncs × 1` is the coalescing win).
    synced: AtomicU64,
}

/// A group-commit handle onto a live WAL: appends through the owning [`WalWriter`]
/// stop fsyncing individually, and callers instead ask [`GroupCommit::sync_upto`] to
/// make a given append watermark durable — one `fdatasync` covers **every** append
/// that landed before it, so pipelined commits coalesce their syncs for free.
///
/// Durability semantics: a crash can lose only appends past the highest watermark a
/// `sync_upto` call has returned for, and recovery truncates the torn tail to the
/// last fully-framed record exactly as before — the loss window widens from
/// at-most-one batch to at-most-the-unsynced window, which is the contract the
/// pipelined serving layer advertises.
#[derive(Debug, Clone)]
pub struct GroupCommit {
    shared: Arc<GroupShared>,
}

impl GroupCommit {
    /// Records appended through the owning writer since group commit began.
    pub fn appended(&self) -> u64 {
        self.shared.appended.load(Ordering::Acquire)
    }

    /// The durability watermark: appends numbered `<= durable()` survive a crash.
    pub fn durable(&self) -> u64 {
        self.shared.durable.load(Ordering::Acquire)
    }

    /// `fdatasync` calls issued through this group (coalescing makes this smaller
    /// than the number of `sync_upto` requests).
    pub fn fsyncs(&self) -> u64 {
        self.shared.fsyncs.load(Ordering::Relaxed)
    }

    /// Appends covered by the issued syncs.
    pub fn synced(&self) -> u64 {
        self.shared.synced.load(Ordering::Relaxed)
    }

    /// Makes every append numbered `<= target` durable.  Returns without touching
    /// the disk when an earlier sync already covered `target`; otherwise issues one
    /// `fdatasync` that covers everything appended so far (conservatively watermarked
    /// at the append count loaded *before* the sync — appends racing the sync are
    /// not credited, the next sync re-covers them).
    pub fn sync_upto(&self, target: u64) -> PersistResult<()> {
        if self.durable() >= target {
            return Ok(());
        }
        let file = self.shared.file.lock().expect("group-commit file poisoned");
        // Re-check under the lock: the sync we queued behind may have covered us.
        if self.durable() >= target {
            return Ok(());
        }
        let mark = self.shared.appended.load(Ordering::Acquire);
        crate::shim::notify(crate::shim::IoOp::WalSync, 0);
        file.sync_data()?;
        self.shared.fsyncs.fetch_add(1, Ordering::Relaxed);
        let prev = self.shared.durable.fetch_max(mark, Ordering::AcqRel);
        self.shared
            .synced
            .fetch_add(mark.saturating_sub(prev), Ordering::Relaxed);
        Ok(())
    }

    /// Rebinds the group onto `file` (a fresh WAL after rotation) and credits every
    /// prior append as durable — the checkpoint that rotated the log made them
    /// obsolete.  Called with the writer quiesced (no in-flight appends).
    fn rebind(&self, file: File) {
        let mut slot = self.shared.file.lock().expect("group-commit file poisoned");
        let mark = self.shared.appended.load(Ordering::Acquire);
        self.shared.durable.fetch_max(mark, Ordering::AcqRel);
        *slot = file;
    }
}

/// Appends CRC-framed records to a WAL file, fsyncing each batch by default.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    fsync: bool,
    appended: u64,
    /// Individual (non-group) `fdatasync` calls issued by the append path.
    fsyncs: u64,
    /// When set, appends skip their individual fsync and bump the group's append
    /// counter instead; durability is driven through [`GroupCommit::sync_upto`].
    group: Option<Arc<GroupShared>>,
}

/// Point-in-time WAL observability counters, unifying the individual-fsync and
/// group-commit modes into one view (see [`WalWriter::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended through the writer (this incarnation; resets on rotation).
    pub appended: u64,
    /// Individual `fdatasync` calls issued by the append path (zero in group mode).
    pub fsyncs: u64,
    /// Whether the writer is currently in group-commit mode.
    pub group_active: bool,
    /// Group-mode appends published for coalesced syncs (monotone across rotations).
    pub group_appended: u64,
    /// The group durability watermark (appends numbered `<=` this survive a crash).
    pub group_durable: u64,
    /// Coalesced `fdatasync` calls issued through the group.
    pub group_fsyncs: u64,
    /// Appends covered by those coalesced syncs.
    pub group_synced: u64,
}

impl WalWriter {
    /// Creates a fresh WAL file (failing if one already exists) and syncs its header.
    pub fn create(path: &Path) -> PersistResult<Self> {
        let mut file = OpenOptions::new().write(true).create_new(true).open(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            fsync: true,
            appended: 0,
            fsyncs: 0,
            group: None,
        })
    }

    /// Re-opens an existing WAL for appending: validates every frame, truncates the
    /// torn tail (if any) so a crashed half-frame can never shadow a future append,
    /// and positions the writer at the end.  Returns the surviving records alongside
    /// the writer.
    pub fn open_truncating(path: &Path) -> PersistResult<(WalScan, Self)> {
        let scan = read_records(path)?;
        let file = OpenOptions::new().write(true).open(path)?;
        if scan.torn_tail {
            file.set_len(scan.valid_len)?;
            file.sync_all()?;
        }
        let mut file = file;
        file.seek(SeekFrom::Start(scan.valid_len))?;
        Ok((
            scan,
            WalWriter {
                file,
                fsync: true,
                appended: 0,
                fsyncs: 0,
                group: None,
            },
        ))
    }

    /// Controls whether each append fsyncs before returning (defaults to `true`).
    /// With fsync off, durability of recent batches depends on the OS page cache —
    /// only recovery *correctness* is preserved (the tail truncates cleanly either
    /// way), not the at-most-one-batch loss bound.
    pub fn set_fsync(&mut self, fsync: bool) {
        self.fsync = fsync;
    }

    /// Appends one record and (by default) fsyncs it.  Encodes straight from the
    /// borrowed batch — no clone of the edges on the per-batch hot path.
    pub fn append(&mut self, seq: u64, op: WalOp, edges: &[Edge]) -> PersistResult<()> {
        let body = encode_body(seq, op, edges);
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        crate::shim::notify(crate::shim::IoOp::WalAppend, frame.len());
        self.file.write_all(&frame)?;
        if let Some(group) = &self.group {
            // Group commit: publish the append for a later coalesced sync instead of
            // paying an fsync here.
            group.appended.fetch_add(1, Ordering::AcqRel);
        } else if self.fsync {
            crate::shim::notify(crate::shim::IoOp::WalSync, 0);
            self.file.sync_data()?;
            self.fsyncs += 1;
        }
        self.appended += 1;
        Ok(())
    }

    /// Number of records appended through this writer.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Point-in-time WAL counters covering both durability modes: the writer's
    /// own append/fsync counts plus, in group-commit mode, the group's
    /// append/watermark/coalesced-sync counters.
    pub fn stats(&self) -> WalStats {
        let mut stats = WalStats {
            appended: self.appended,
            fsyncs: self.fsyncs,
            ..WalStats::default()
        };
        if let Some(group) = &self.group {
            stats.group_active = true;
            stats.group_appended = group.appended.load(Ordering::Acquire);
            stats.group_durable = group.durable.load(Ordering::Acquire);
            stats.group_fsyncs = group.fsyncs.load(Ordering::Relaxed);
            stats.group_synced = group.synced.load(Ordering::Relaxed);
        }
        stats
    }

    /// Switches the writer into group-commit mode: appends stop fsyncing
    /// individually, and the returned (cloneable) [`GroupCommit`] handle drives
    /// durability through [`GroupCommit::sync_upto`] — typically from a pipelined
    /// committer thread, while this writer keeps appending.
    pub fn begin_group_commit(&mut self) -> PersistResult<GroupCommit> {
        let shared = Arc::new(GroupShared {
            file: Mutex::new(self.file.try_clone()?),
            appended: AtomicU64::new(0),
            durable: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            synced: AtomicU64::new(0),
        });
        self.group = Some(Arc::clone(&shared));
        Ok(GroupCommit { shared })
    }

    /// Rebinds an existing group-commit handle onto this (freshly rotated) writer:
    /// appends continue the group's cumulative numbering, and every pre-rotation
    /// append is credited as durable (the checkpoint superseded them).
    pub fn adopt_group(&mut self, group: &GroupCommit) -> PersistResult<()> {
        group.rebind(self.file.try_clone()?);
        self.group = Some(Arc::clone(&group.shared));
        Ok(())
    }

    /// Leaves group-commit mode: issues one final sync covering every outstanding
    /// append (when per-append fsync is configured), then restores the writer's
    /// individual-fsync behaviour.
    pub fn end_group_commit(&mut self) -> PersistResult<()> {
        if let Some(group) = self.group.take() {
            let outstanding = group.appended.load(Ordering::Acquire);
            if self.fsync && group.durable.load(Ordering::Acquire) < outstanding {
                GroupCommit { shared: group }.sync_upto(outstanding)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs.iter().map(|&(s, t)| Edge::new(s, t)).collect()
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = TempDir::new("wal-roundtrip");
        let path = dir.path().join("wal.log");
        let mut writer = WalWriter::create(&path).unwrap();
        writer
            .append(0, WalOp::Arrivals, &edges(&[(0, 1), (2, 3)]))
            .unwrap();
        writer
            .append(1, WalOp::Deletions, &edges(&[(0, 1)]))
            .unwrap();
        writer.append(2, WalOp::Arrivals, &[]).unwrap();

        let scan = read_records(&path).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0].op, WalOp::Arrivals);
        assert_eq!(scan.records[0].edges, edges(&[(0, 1), (2, 3)]));
        assert_eq!(scan.records[1].op, WalOp::Deletions);
        assert_eq!(scan.records[2].seq, 2);
        assert!(scan.records[2].edges.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("wal.log");
        let mut writer = WalWriter::create(&path).unwrap();
        writer
            .append(0, WalOp::Arrivals, &edges(&[(1, 2)]))
            .unwrap();
        writer
            .append(1, WalOp::Arrivals, &edges(&[(3, 4)]))
            .unwrap();
        drop(writer);
        // Simulate a crash mid-append: half a frame of garbage at the tail.
        let intact = std::fs::metadata(&path).unwrap().len();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0x55; 7]).unwrap();
        drop(file);

        let (scan, mut writer) = WalWriter::open_truncating(&path).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, intact);
        assert_eq!(scan.records.len(), 2);
        writer
            .append(2, WalOp::Deletions, &edges(&[(1, 2)]))
            .unwrap();
        drop(writer);

        let rescan = read_records(&path).unwrap();
        assert!(!rescan.torn_tail);
        assert_eq!(rescan.records.len(), 3);
        assert_eq!(rescan.records[2].seq, 2);
    }

    #[test]
    fn corrupted_record_body_stops_the_scan() {
        let dir = TempDir::new("wal-corrupt");
        let path = dir.path().join("wal.log");
        let mut writer = WalWriter::create(&path).unwrap();
        writer
            .append(0, WalOp::Arrivals, &edges(&[(1, 2)]))
            .unwrap();
        writer
            .append(1, WalOp::Arrivals, &edges(&[(3, 4)]))
            .unwrap();
        drop(writer);
        // Flip one byte inside the second record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let off = bytes.len() - 3;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let scan = read_records(&path).unwrap();
        assert!(scan.torn_tail, "a mid-body flip must invalidate the frame");
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn bad_header_is_rejected_outright() {
        let dir = TempDir::new("wal-header");
        let path = dir.path().join("wal.log");
        std::fs::write(&path, b"NOTAWAL!\x01\x00\x00\x00zzzz").unwrap();
        assert!(read_records(&path).is_err());
        std::fs::write(&path, b"short").unwrap();
        assert!(read_records(&path).is_err());
    }

    #[test]
    fn group_commit_coalesces_syncs_under_one_watermark() {
        let dir = TempDir::new("wal-group");
        let path = dir.path().join("wal.log");
        let mut writer = WalWriter::create(&path).unwrap();
        let group = writer.begin_group_commit().unwrap();

        for seq in 0..5 {
            writer
                .append(
                    seq,
                    WalOp::Arrivals,
                    &edges(&[(seq as u32, seq as u32 + 1)]),
                )
                .unwrap();
        }
        assert_eq!(group.appended(), 5);
        assert_eq!(group.durable(), 0, "nothing synced yet");
        assert_eq!(group.fsyncs(), 0);

        // One sync covers all five appends…
        group.sync_upto(5).unwrap();
        assert_eq!(group.fsyncs(), 1);
        assert_eq!(group.durable(), 5);
        assert_eq!(group.synced(), 5);
        // …and watermarks at or below it are free.
        group.sync_upto(3).unwrap();
        group.sync_upto(5).unwrap();
        assert_eq!(group.fsyncs(), 1, "covered watermarks re-sync nothing");

        // A sync requested mid-window covers the appends racing ahead of it too.
        writer.append(5, WalOp::Arrivals, &[]).unwrap();
        writer.append(6, WalOp::Deletions, &[]).unwrap();
        group.sync_upto(6).unwrap();
        assert_eq!(group.fsyncs(), 2);
        assert_eq!(group.durable(), 7, "the sync credited the append beyond it");

        writer.end_group_commit().unwrap();
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 7);
        assert!(!scan.torn_tail);
    }

    #[test]
    fn group_rebind_carries_the_watermark_across_rotation() {
        let dir = TempDir::new("wal-group-rotate");
        let old_path = dir.path().join("wal-1.log");
        let new_path = dir.path().join("wal-2.log");
        let mut writer = WalWriter::create(&old_path).unwrap();
        let group = writer.begin_group_commit().unwrap();
        writer
            .append(0, WalOp::Arrivals, &edges(&[(1, 2)]))
            .unwrap();
        assert_eq!(group.durable(), 0);

        // Rotation: a fresh writer adopts the group; the superseded appends are
        // credited durable and new appends keep the cumulative numbering.
        let mut rotated = WalWriter::create(&new_path).unwrap();
        rotated.adopt_group(&group).unwrap();
        assert_eq!(group.durable(), 1, "pre-rotation appends credited");
        rotated
            .append(1, WalOp::Arrivals, &edges(&[(3, 4)]))
            .unwrap();
        assert_eq!(group.appended(), 2);
        group.sync_upto(2).unwrap();
        assert_eq!(group.durable(), 2);
        assert_eq!(read_records(&new_path).unwrap().records.len(), 1);
    }

    #[test]
    fn ending_group_commit_restores_per_append_fsync() {
        let dir = TempDir::new("wal-group-end");
        let path = dir.path().join("wal.log");
        let mut writer = WalWriter::create(&path).unwrap();
        let group = writer.begin_group_commit().unwrap();
        writer
            .append(0, WalOp::Arrivals, &edges(&[(1, 2)]))
            .unwrap();
        writer.end_group_commit().unwrap();
        assert_eq!(group.durable(), 1, "the final sync covered the tail");
        // Appends after the group ends are individually fsynced again and no longer
        // counted against the group.
        writer
            .append(1, WalOp::Arrivals, &edges(&[(3, 4)]))
            .unwrap();
        assert_eq!(group.appended(), 1);
        assert_eq!(read_records(&path).unwrap().records.len(), 2);
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = TempDir::new("wal-clobber");
        let path = dir.path().join("wal.log");
        let _writer = WalWriter::create(&path).unwrap();
        assert!(WalWriter::create(&path).is_err());
    }
}
