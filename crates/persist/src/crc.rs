//! CRC-32 (IEEE 802.3 polynomial), the checksum framing every persistent byte of the
//! store: snapshot sections, heap pages, and WAL records.
//!
//! The implementation is the classic reflected table-driven one (polynomial
//! `0xEDB88320`), computed into a `const` table at compile time so the crate stays
//! dependency-free.  CRC-32 is an error-*detection* code: it reliably catches the
//! corruptions recovery has to care about — torn writes, truncated tails, bit rot —
//! and anything it flags is treated as "this region does not exist", never repaired.

/// The reflected CRC-32 lookup table for polynomial `0xEDB88320`.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// A streaming CRC-32 hasher, for checksumming data produced in pieces.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finishes the checksum and returns the digest.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// CRC-32 of a single contiguous buffer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut streaming = Crc32::new();
        for chunk in data.chunks(37) {
            streaming.update(chunk);
        }
        assert_eq!(streaming.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let data = b"walk segments are stored state".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
