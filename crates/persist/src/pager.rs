//! A page-granular read cache over a [`File`] region.
//!
//! The snapshot's walk heap is laid out in fixed-size pages ([`crate::layout`]); this
//! cache is how those pages are read back: cold-open faults pages in on first touch,
//! repeated reads hit memory, and checkpoint write-back streams **clean** pages out of
//! the cache (or the file) byte-for-byte instead of re-encoding them.  Hit/miss/byte
//! counters make the cost observable in the persistence bench.
//!
//! Pages are validated against a caller-supplied CRC on first load, so a cached page
//! is always a verified page.  The cache holds every loaded page until dropped —
//! eviction (and the mmap fast path) is the documented follow-up; the resident set is
//! bounded by the store size, which is the same bound the in-memory engine already
//! pays.

use crate::crc::crc32;
use crate::io::{corrupt, PersistResult};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

/// Access counters of a [`PageCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagerStats {
    /// Pages faulted in from the file (first touch).
    pub loads: u64,
    /// Page reads served from memory.
    pub hits: u64,
    /// Bytes read from the file.
    pub bytes_read: u64,
}

/// A read cache over a fixed-size-page region of a file.
#[derive(Debug)]
pub struct PageCache {
    file: File,
    /// Byte offset of page 0 within the file.
    base: u64,
    page_size: usize,
    page_count: u32,
    pages: HashMap<u32, Box<[u8]>>,
    stats: PagerStats,
}

impl PageCache {
    /// Wraps `file` from byte offset `base`, exposing `page_count` pages of
    /// `page_size` bytes each.
    pub fn new(file: File, base: u64, page_size: usize, page_count: u32) -> Self {
        PageCache {
            file,
            base,
            page_size,
            page_count,
            pages: HashMap::new(),
            stats: PagerStats::default(),
        }
    }

    /// Number of pages in the region.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Access counters since construction.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Seeds the cache with an already-validated page image (used after a checkpoint
    /// to keep the just-written generation's pages warm instead of re-reading them
    /// from disk on the next write-back).
    pub fn preload(&mut self, index: u32, bytes: &[u8]) {
        debug_assert_eq!(bytes.len(), self.page_size);
        if index < self.page_count {
            self.pages.insert(index, bytes.to_vec().into_boxed_slice());
        }
    }

    /// Reads page `index`, faulting it in from the file on first touch and verifying
    /// it against `expected_crc` before it enters the cache.
    pub fn read_page(&mut self, index: u32, expected_crc: u32) -> PersistResult<&[u8]> {
        if index >= self.page_count {
            return Err(corrupt(format!(
                "page {index} out of range ({} pages)",
                self.page_count
            )));
        }
        if self.pages.contains_key(&index) {
            self.stats.hits += 1;
        } else {
            let mut buf = vec![0u8; self.page_size].into_boxed_slice();
            self.file.seek(SeekFrom::Start(
                self.base + index as u64 * self.page_size as u64,
            ))?;
            self.file.read_exact(&mut buf)?;
            self.stats.loads += 1;
            self.stats.bytes_read += self.page_size as u64;
            if crc32(&buf) != expected_crc {
                return Err(corrupt(format!("checksum mismatch on heap page {index}")));
            }
            self.pages.insert(index, buf);
        }
        Ok(&self.pages[&index])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use std::io::Write;

    fn setup(pages: &[[u8; 8]]) -> (TempDir, File, Vec<u32>) {
        let dir = TempDir::new("pager");
        let path = dir.path().join("paged.bin");
        let mut file = File::create(&path).unwrap();
        file.write_all(b"HDR!").unwrap(); // 4-byte prefix before page 0
        let mut crcs = Vec::new();
        for page in pages {
            file.write_all(page).unwrap();
            crcs.push(crc32(page));
        }
        drop(file);
        (dir, File::open(&path).unwrap(), crcs)
    }

    #[test]
    fn loads_once_then_hits() {
        let pages = [[1u8; 8], [2u8; 8], [3u8; 8]];
        let (_dir, file, crcs) = setup(&pages);
        let mut cache = PageCache::new(file, 4, 8, 3);
        for round in 0..2 {
            for (i, page) in pages.iter().enumerate() {
                assert_eq!(cache.read_page(i as u32, crcs[i]).unwrap(), page);
            }
            let stats = cache.stats();
            assert_eq!(stats.loads, 3);
            assert_eq!(stats.hits, round * 3);
            assert_eq!(stats.bytes_read, 24);
        }
    }

    #[test]
    fn crc_mismatch_and_out_of_range_are_rejected() {
        let pages = [[9u8; 8]];
        let (_dir, file, crcs) = setup(&pages);
        let mut cache = PageCache::new(file, 4, 8, 1);
        assert!(cache.read_page(0, crcs[0] ^ 1).is_err());
        assert!(cache.read_page(1, 0).is_err());
    }
}
