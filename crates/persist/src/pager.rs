//! A bounded, evicting page cache over a [`File`] region.
//!
//! The snapshot's walk heap is laid out in fixed-size pages ([`crate::layout`]); this
//! cache is how those pages are read back.  Reads demand-fault pages on first touch
//! and verify each faulted image against a caller-supplied CRC — on *every* (re-)fault,
//! not just the first, so an evicted page that rots on disk is caught the moment it is
//! needed again.  Residency is bounded: an optional `max_resident_pages` budget is
//! enforced with CLOCK (second-chance) eviction over the unpinned resident set, and a
//! caller-supplied pin set marks pages as unevictable (the disk store pins the pages of
//! its hottest nodes, exploiting the power-law visit skew as the admission policy).
//!
//! Frames live in a flat table indexed by page number (`Vec<Option<Frame>>`), so the
//! hot read path is two direct slot accesses with zero hashing.  This deliberately
//! replaces the earlier `HashMap` cache — besides the double-lookup it forced on hits,
//! a map cannot hand back a borrow from a single probe on stable Rust once eviction
//! needs `&mut` access mid-function (NLL problem case #3); the frame table can.
//!
//! Checkpoint write-back uses [`PageCache::read_page_into`], which serves cache hits
//! from memory but streams misses file-to-file **without admission** — cloning a
//! generation never faults the whole store resident.  Hit/miss/eviction/streamed
//! counters make every regime observable in the persistence bench.

use crate::crc::crc32;
use crate::io::{corrupt, PersistResult};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

/// Access counters of a [`PageCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagerStats {
    /// Pages faulted in from the file (first touch or re-fault after eviction).
    pub loads: u64,
    /// Page reads served from memory.
    pub hits: u64,
    /// Bytes read from the file.
    pub bytes_read: u64,
    /// Resident pages evicted to stay under the budget.
    pub evictions: u64,
    /// Subset of `loads` that re-faulted a page evicted earlier.
    pub refaults: u64,
    /// Pages served to streaming readers straight from the file, bypassing admission
    /// (checkpoint write-back of clean pages).
    pub streamed: u64,
}

/// One resident page.
#[derive(Debug)]
struct Frame {
    bytes: Box<[u8]>,
    /// CLOCK reference bit: set on every access, cleared when the hand passes.
    referenced: bool,
}

/// A bounded read cache over a fixed-size-page region of a file.
#[derive(Debug)]
pub struct PageCache {
    file: File,
    /// Byte offset of page 0 within the file.
    base: u64,
    page_size: usize,
    page_count: u32,
    /// Frame table indexed by page number; `None` means not resident.
    frames: Vec<Option<Frame>>,
    /// Number of `Some` entries in `frames`.
    resident: usize,
    /// Residency budget in pages; `None` means unbounded.
    budget: Option<usize>,
    /// Unevictable pages (admitted past the budget if everything else is pinned).
    pinned: Vec<bool>,
    /// CLOCK ring: exactly the resident *unpinned* pages, each once.
    clock: VecDeque<u32>,
    /// Pages that have been resident at least once (distinguishes re-faults).
    ever_resident: Vec<bool>,
    stats: PagerStats,
}

impl PageCache {
    /// Wraps `file` from byte offset `base`, exposing `page_count` pages of
    /// `page_size` bytes each.  The cache starts unbounded with no pins.
    pub fn new(file: File, base: u64, page_size: usize, page_count: u32) -> Self {
        PageCache {
            file,
            base,
            page_size,
            page_count,
            frames: (0..page_count).map(|_| None).collect(),
            resident: 0,
            budget: None,
            pinned: vec![false; page_count as usize],
            clock: VecDeque::new(),
            ever_resident: vec![false; page_count as usize],
            stats: PagerStats::default(),
        }
    }

    /// Number of pages in the region.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Byte offset of page 0 within the backing file.
    pub fn base_offset(&self) -> u64 {
        self.base
    }

    /// Access counters since construction.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Number of pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Bytes of page data currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident as u64 * self.page_size as u64
    }

    /// Number of resident pages that are pinned.
    pub fn pinned_resident_pages(&self) -> usize {
        self.frames
            .iter()
            .zip(&self.pinned)
            .filter(|(f, &p)| f.is_some() && p)
            .count()
    }

    /// Sets the residency budget (`None` = unbounded), evicting down if the current
    /// resident set exceeds it.  A budget of 0 is clamped to 1 — a cache that can
    /// hold nothing cannot serve reads.
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.budget = budget.map(|b| b.max(1));
        if let Some(limit) = self.budget {
            while self.resident > limit && self.evict_one() {}
        }
    }

    /// Current residency budget (`None` = unbounded).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Replaces the pin set.  Pinned pages are never evicted and are admitted even
    /// at budget (evicting an unpinned page to make room).  Rebuilds the CLOCK ring
    /// and evicts down if newly-unpinned pages push the set over budget.
    pub fn set_pinned_pages(&mut self, pages: &[u32]) -> PersistResult<()> {
        for &page in pages {
            if page >= self.page_count {
                return Err(corrupt(format!(
                    "pinned page {page} out of range ({} pages)",
                    self.page_count
                )));
            }
        }
        self.pinned.iter_mut().for_each(|p| *p = false);
        for &page in pages {
            self.pinned[page as usize] = true;
        }
        self.clock.clear();
        for index in 0..self.page_count {
            if self.frames[index as usize].is_some() && !self.pinned[index as usize] {
                self.clock.push_back(index);
            }
        }
        if let Some(limit) = self.budget {
            while self.resident > limit && self.evict_one() {}
        }
        Ok(())
    }

    fn check_range(&self, index: u32) -> PersistResult<()> {
        if index >= self.page_count {
            return Err(corrupt(format!(
                "page {index} out of range ({} pages)",
                self.page_count
            )));
        }
        Ok(())
    }

    /// Reads the page's bytes from the file into `out` (no CRC check, no counters
    /// beyond `bytes_read`).
    fn read_from_file(&mut self, index: u32, out: &mut [u8]) -> PersistResult<()> {
        self.file.seek(SeekFrom::Start(
            self.base + index as u64 * self.page_size as u64,
        ))?;
        self.file.read_exact(out)?;
        self.stats.bytes_read += self.page_size as u64;
        Ok(())
    }

    /// Evicts one unpinned resident page chosen by CLOCK second-chance: the hand
    /// skips (and demotes) referenced pages once, then takes the first unreferenced
    /// one.  Returns `false` when nothing is evictable (all resident pages pinned).
    fn evict_one(&mut self) -> bool {
        // Each ring entry is inspected at most twice (demote, then take), so the
        // loop is bounded even when every page starts referenced.
        for _ in 0..2 * self.clock.len() {
            let Some(index) = self.clock.pop_front() else {
                return false;
            };
            let frame = self.frames[index as usize]
                .as_mut()
                .expect("clock ring holds only resident pages");
            if frame.referenced {
                frame.referenced = false;
                self.clock.push_back(index);
                continue;
            }
            self.frames[index as usize] = None;
            self.resident -= 1;
            self.stats.evictions += 1;
            return true;
        }
        !self.clock.is_empty() && {
            // Unreachable in practice (two passes always find a victim), but keep
            // the loop bound honest: take the hand's page unconditionally.
            let index = self.clock.pop_front().expect("checked non-empty");
            self.frames[index as usize] = None;
            self.resident -= 1;
            self.stats.evictions += 1;
            true
        }
    }

    /// Installs a verified page image, evicting to budget first.  If every resident
    /// page is pinned the budget is exceeded rather than failing the read.
    fn admit(&mut self, index: u32, bytes: Box<[u8]>) {
        if let Some(limit) = self.budget {
            while self.resident >= limit && self.evict_one() {}
        }
        let slot = &mut self.frames[index as usize];
        debug_assert!(slot.is_none(), "admitting an already-resident page");
        *slot = Some(Frame {
            bytes,
            referenced: true,
        });
        self.resident += 1;
        self.ever_resident[index as usize] = true;
        if !self.pinned[index as usize] {
            self.clock.push_back(index);
        }
    }

    /// Seeds the cache with an already-validated page image (used after a checkpoint
    /// to keep just-written pages warm instead of re-reading them from disk).
    ///
    /// Out-of-range indices and wrong-length images are hard errors — a caller that
    /// trips either has corrupted its geometry bookkeeping.  Admission is a policy
    /// decision, not an error: pinned pages always enter (evicting unpinned ones if
    /// needed); unpinned pages enter only while there is room under the budget —
    /// warming the cache never evicts demand-faulted pages.
    pub fn preload(&mut self, index: u32, bytes: &[u8]) -> PersistResult<()> {
        self.check_range(index)?;
        if bytes.len() != self.page_size {
            return Err(corrupt(format!(
                "preload of page {index} with {} bytes, page size is {}",
                bytes.len(),
                self.page_size
            )));
        }
        if let Some(frame) = self.frames[index as usize].as_mut() {
            frame.bytes.copy_from_slice(bytes);
            return Ok(());
        }
        if !self.pinned[index as usize] {
            if let Some(limit) = self.budget {
                if self.resident >= limit {
                    return Ok(());
                }
            }
        }
        self.admit(index, bytes.to_vec().into_boxed_slice());
        Ok(())
    }

    /// Reads page `index`, demand-faulting it from the file on a miss and verifying
    /// the image against `expected_crc` before it enters the cache.  Every fault is
    /// verified — including re-faults of pages evicted earlier.
    pub fn read_page(&mut self, index: u32, expected_crc: u32) -> PersistResult<&[u8]> {
        self.check_range(index)?;
        if self.frames[index as usize].is_some() {
            self.stats.hits += 1;
        } else {
            let mut buf = vec![0u8; self.page_size].into_boxed_slice();
            self.read_from_file(index, &mut buf)?;
            if crc32(&buf) != expected_crc {
                return Err(corrupt(format!("checksum mismatch on heap page {index}")));
            }
            self.stats.loads += 1;
            if self.ever_resident[index as usize] {
                self.stats.refaults += 1;
            }
            self.admit(index, buf);
        }
        let frame = self.frames[index as usize]
            .as_mut()
            .expect("page resident after fault");
        frame.referenced = true;
        Ok(&frame.bytes)
    }

    /// Copies page `index` into `out` without admitting it: cache hits are served
    /// from memory, misses stream from the file (CRC-verified) and leave the
    /// resident set untouched.  This is the checkpoint write-back path — cloning a
    /// generation must not fault the whole store resident.
    pub fn read_page_into(
        &mut self,
        index: u32,
        expected_crc: u32,
        out: &mut [u8],
    ) -> PersistResult<()> {
        self.check_range(index)?;
        if out.len() != self.page_size {
            return Err(corrupt(format!(
                "streaming read of page {index} into {} bytes, page size is {}",
                out.len(),
                self.page_size
            )));
        }
        if let Some(frame) = self.frames[index as usize].as_mut() {
            frame.referenced = true;
            self.stats.hits += 1;
            out.copy_from_slice(&frame.bytes);
            return Ok(());
        }
        self.read_from_file(index, out)?;
        if crc32(out) != expected_crc {
            return Err(corrupt(format!("checksum mismatch on heap page {index}")));
        }
        self.stats.streamed += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use std::io::Write;

    fn setup(pages: &[[u8; 8]]) -> (TempDir, File, Vec<u32>) {
        let dir = TempDir::new("pager");
        let path = dir.path().join("paged.bin");
        let mut file = File::create(&path).unwrap();
        file.write_all(b"HDR!").unwrap(); // 4-byte prefix before page 0
        let mut crcs = Vec::new();
        for page in pages {
            file.write_all(page).unwrap();
            crcs.push(crc32(page));
        }
        drop(file);
        (dir, File::open(&path).unwrap(), crcs)
    }

    #[test]
    fn loads_once_then_hits() {
        let pages = [[1u8; 8], [2u8; 8], [3u8; 8]];
        let (_dir, file, crcs) = setup(&pages);
        let mut cache = PageCache::new(file, 4, 8, 3);
        for round in 0..2 {
            for (i, page) in pages.iter().enumerate() {
                assert_eq!(cache.read_page(i as u32, crcs[i]).unwrap(), page);
            }
            let stats = cache.stats();
            assert_eq!(stats.loads, 3);
            assert_eq!(stats.hits, round * 3);
            assert_eq!(stats.bytes_read, 24);
            assert_eq!(stats.evictions, 0);
        }
        assert_eq!(cache.resident_pages(), 3);
    }

    #[test]
    fn crc_mismatch_and_out_of_range_are_rejected() {
        let pages = [[9u8; 8]];
        let (_dir, file, crcs) = setup(&pages);
        let mut cache = PageCache::new(file, 4, 8, 1);
        assert!(cache.read_page(0, crcs[0] ^ 1).is_err());
        assert!(cache.read_page(1, 0).is_err());
    }

    #[test]
    fn budget_evicts_and_refaults_verify_crc() {
        let pages = [[1u8; 8], [2u8; 8], [3u8; 8]];
        let (_dir, file, crcs) = setup(&pages);
        let mut cache = PageCache::new(file, 4, 8, 3);
        cache.set_budget(Some(1));
        for (i, page) in pages.iter().enumerate() {
            assert_eq!(cache.read_page(i as u32, crcs[i]).unwrap(), page);
        }
        assert_eq!(cache.resident_pages(), 1);
        assert_eq!(cache.stats().evictions, 2);
        // Page 0 was evicted; reading it again is a verified re-fault.
        assert_eq!(cache.read_page(0, crcs[0]).unwrap(), &pages[0]);
        let stats = cache.stats();
        assert_eq!(stats.loads, 4);
        assert_eq!(stats.refaults, 1);
        // A wrong CRC on a re-fault is caught, not served stale.
        assert!(cache.read_page(1, crcs[1] ^ 1).is_err());
    }

    #[test]
    fn clock_gives_referenced_pages_a_second_chance() {
        let pages = [[1u8; 8], [2u8; 8], [3u8; 8], [4u8; 8]];
        let (_dir, file, crcs) = setup(&pages);
        let mut cache = PageCache::new(file, 4, 8, 4);
        cache.set_budget(Some(3));
        for i in 0..3 {
            cache.read_page(i, crcs[i as usize]).unwrap();
        }
        // Admitting page 3 demotes everyone and evicts page 0; pages 1 and 2 are now
        // resident with cleared reference bits.
        cache.read_page(3, crcs[3]).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        // Touch page 1: its reference bit protects it from the next pass, so
        // re-admitting page 0 must skip page 1 and evict page 2 instead.
        cache.read_page(1, crcs[1]).unwrap();
        cache.read_page(0, crcs[0]).unwrap();
        assert!(cache.frames[1].is_some(), "recently-used page survived");
        assert!(cache.frames[2].is_none(), "cold page took the eviction");
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let pages = [[1u8; 8], [2u8; 8], [3u8; 8]];
        let (_dir, file, crcs) = setup(&pages);
        let mut cache = PageCache::new(file, 4, 8, 3);
        cache.set_budget(Some(1));
        cache.set_pinned_pages(&[0]).unwrap();
        cache.read_page(0, crcs[0]).unwrap();
        cache.read_page(1, crcs[1]).unwrap();
        cache.read_page(2, crcs[2]).unwrap();
        // The pinned page rides along past the budget; the unpinned ones thrash.
        assert!(cache.frames[0].is_some(), "pinned page stays resident");
        assert_eq!(cache.pinned_resident_pages(), 1);
        assert!(cache.set_pinned_pages(&[3]).is_err(), "pin out of range");
    }

    #[test]
    fn preload_misuse_is_a_hard_error_and_never_evicts() {
        let pages = [[1u8; 8], [2u8; 8]];
        let (_dir, file, crcs) = setup(&pages);
        let mut cache = PageCache::new(file, 4, 8, 2);
        assert!(cache.preload(2, &[0u8; 8]).is_err(), "out of range");
        assert!(cache.preload(0, &[0u8; 4]).is_err(), "wrong length");
        cache.set_budget(Some(1));
        cache.read_page(0, crcs[0]).unwrap();
        // At budget: an unpinned preload is declined rather than evicting a
        // demand-faulted page.
        cache.preload(1, &pages[1]).unwrap();
        assert!(cache.frames[0].is_some());
        assert!(cache.frames[1].is_none());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn streaming_reads_bypass_admission() {
        let pages = [[1u8; 8], [2u8; 8]];
        let (_dir, file, crcs) = setup(&pages);
        let mut cache = PageCache::new(file, 4, 8, 2);
        let mut out = [0u8; 8];
        cache.read_page_into(0, crcs[0], &mut out).unwrap();
        assert_eq!(out, pages[0]);
        assert_eq!(cache.resident_pages(), 0, "streamed page not admitted");
        assert_eq!(cache.stats().streamed, 1);
        // A cached page serves the streaming read from memory.
        cache.read_page(1, crcs[1]).unwrap();
        cache.read_page_into(1, crcs[1], &mut out).unwrap();
        assert_eq!(out, pages[1]);
        assert_eq!(cache.stats().hits, 1);
        assert!(cache.read_page_into(0, crcs[0] ^ 1, &mut out).is_err());
    }
}
