//! [`MetricSource`] adapters for every stats struct this crate owns.
//!
//! Each adapter is a pure read of an already-snapshotted stats value — the hot
//! paths that fill those structs are untouched.  Collectors namespace the
//! output themselves via [`SnapshotBuilder::source`], so the names emitted
//! here are relative (`fetches`, not `store.fetches`).

use crate::arena::ArenaStats;
use crate::metrics::{ShardLoad, StoreMetrics, WorkCounter};
use crate::view::SpineCopyStats;
use ppr_telemetry::{MetricSource, SnapshotBuilder};

impl MetricSource for StoreMetrics {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("fetches", self.fetches);
        out.counter("edges_returned", self.edges_returned);
        out.counter("sampled_neighbor_queries", self.sampled_neighbor_queries);
        out.counter("edge_insertions", self.edge_insertions);
        out.counter("edge_deletions", self.edge_deletions);
    }
}

impl MetricSource for ShardLoad {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("segments_rewritten", self.segments_rewritten);
        out.counter("steps_written", self.steps_written);
        out.counter("postings_updates", self.postings_updates);
    }
}

impl MetricSource for WorkCounter {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("segments_updated", self.segments_updated);
        out.counter("walk_steps", self.walk_steps);
        out.counter("edges_processed", self.edges_processed);
        out.counter("arrivals_filtered", self.arrivals_filtered);
        out.counter("total_work", self.total_work());
        // steps_per_edge already guards its zero denominator.
        out.gauge("steps_per_edge", self.steps_per_edge());
    }
}

impl MetricSource for ArenaStats {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("in_place_writes", self.in_place_writes);
        out.counter("relocations", self.relocations);
        out.counter("compactions", self.compactions);
        out.counter("compaction_nanos", self.compaction_nanos);
        out.counter("compaction_steps_moved", self.compaction_steps_moved);
        out.gauge("live_steps", self.live_steps as f64);
        out.gauge("dead_steps", self.dead_steps as f64);
        out.gauge("buffer_len", self.buffer_len as f64);
        out.ratio(
            "dead_fraction",
            self.dead_steps as u64,
            self.buffer_len as u64,
        );
    }
}

impl MetricSource for SpineCopyStats {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("chunks_copied", self.chunks_copied);
        out.counter("blocks_copied", self.blocks_copied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_telemetry::TelemetrySnapshot;

    fn collect(source: &dyn MetricSource, segment: &str) -> TelemetrySnapshot {
        let mut out = SnapshotBuilder::new();
        out.source(segment, source);
        TelemetrySnapshot::from_builder(0, out)
    }

    #[test]
    fn store_metrics_emit_namespaced_counters() {
        let metrics = StoreMetrics {
            fetches: 5,
            edges_returned: 40,
            sampled_neighbor_queries: 1,
            edge_insertions: 9,
            edge_deletions: 2,
        };
        let snap = collect(&metrics, "store");
        assert_eq!(snap.counter("store.fetches"), Some(5));
        assert_eq!(snap.counter("store.edge_deletions"), Some(2));
    }

    #[test]
    fn arena_stats_emit_guarded_dead_fraction() {
        let snap = collect(&ArenaStats::default(), "arena");
        assert_eq!(snap.gauge("arena.dead_fraction"), Some(0.0));
        assert_eq!(snap.counter("arena.relocations"), Some(0));
    }

    #[test]
    fn work_counter_emits_paper_work_units() {
        let work = WorkCounter {
            segments_updated: 2,
            walk_steps: 10,
            edges_processed: 4,
            arrivals_filtered: 1,
        };
        let snap = collect(&work, "work");
        assert_eq!(snap.counter("work.total_work"), Some(12));
        assert_eq!(snap.gauge("work.steps_per_edge"), Some(2.5));
    }
}
