//! Storage substrates for the `fast-ppr` workspace.
//!
//! The paper assumes two stores:
//!
//! * the **Social Store** ("FlockDB" at Twitter): the social graph held in distributed
//!   shared memory, supporting random access to a node's adjacency.  The cost the paper
//!   charges to the personalization algorithm is the number of *fetches* made against
//!   this store, so [`social::SocialStore`] instruments every access.
//! * the **PageRank Store**: for every node, `R` cached random-walk segments plus two
//!   counters — `W(v)`, the number of walk-segment visits to `v`, and `d(v)`, the
//!   out-degree of `v` — which drive both the Monte Carlo estimator and the
//!   `1 - (1 - 1/d(v))^{W(v)}` filter that decides whether an arriving edge needs to
//!   touch the PageRank Store at all.  This is [`walks::WalkStore`], built from a flat
//!   step [`arena`] (one shared buffer of walk steps with per-segment slots) and
//!   CSR-style visit [`postings`] (sorted `(SegmentId, count)` runs with a lazily
//!   merged delta overlay).
//!
//! Engines consume the PageRank Store exclusively through the API layer in
//! [`index`]: read-only queries through [`index::WalkIndexView`], maintenance reads
//! through [`index::WalkIndex`], writes through [`index::WalkIndexMut`] — so the
//! memory layout can keep evolving without touching them.  Two live layouts ship
//! here: the single-shard [`walks::WalkStore`] and the
//! [`sharded::ShardedWalkStore`], which splits the arena and the postings into `S`
//! shards keyed by `node_id % S` (the same [`routing`] rule as the Social Store) and
//! applies whole rewrite plans with one worker thread per shard.  The [`view`]
//! module adds the serving side: [`view::FrozenWalks`] / [`view::FrozenGraph`] are
//! epoch-pinned, chunked copy-on-write snapshots of the two stores that readers on
//! other threads query lock-free while a writer keeps mutating the live layout.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod digest;
pub mod index;
pub mod metrics;
pub mod postings;
pub mod routing;
pub mod segment;
pub mod sharded;
pub mod social;
pub mod telem;
pub mod view;
pub mod walks;

pub use arena::ArenaStats;
pub use digest::StoreDigest;
pub use index::{SegmentRewrites, WalkIndex, WalkIndexMut, WalkIndexView};
pub use metrics::{ShardLoad, StoreMetrics, WorkCounter};
pub use postings::VisitPostings;
pub use segment::SegmentId;
pub use sharded::ShardedWalkStore;
pub use social::SocialStore;
pub use view::{AdjacencyFetch, FrozenGraph, FrozenWalks, SpineCopyStats, TouchedChunks};
pub use walks::WalkStore;
