//! The PageRank Store: per-node cached walk segments with visit indexing.
//!
//! Section 2.1 of the paper stores `R` walk segments per node, "where each segment is
//! stored at every node that it passes through".  That secondary index is what makes
//! incremental maintenance cheap: when an edge `(u, v)` arrives, only the segments that
//! visit `u` can possibly need an update.  [`WalkStore`] keeps:
//!
//! * the segments themselves, in `R` consecutive slots per source node;
//! * for every node `v`, the map from segment id to the number of times that segment
//!   visits `v` (whose sum is the paper's `W(v)` counter and the estimator's `X_v`);
//! * the running total of all visits, used to normalise the PageRank estimates.

use crate::segment::{SegmentId, WalkSegment};
use ppr_graph::NodeId;
use std::collections::HashMap;

/// Storage for `R` random-walk segments per node, indexed by visited node.
#[derive(Debug, Clone)]
pub struct WalkStore {
    r: usize,
    segments: Vec<WalkSegment>,
    /// For every node, which segments visit it and how many times.
    visitors: Vec<HashMap<SegmentId, u32>>,
    /// Total visits per node (`X_v` / `W(v)` in the paper).
    visit_counts: Vec<u64>,
    /// Sum of `visit_counts` (i.e. the total length of all stored segments).
    total_visits: u64,
}

impl WalkStore {
    /// Creates an empty store for `node_count` nodes with `r` segments per node.
    pub fn new(node_count: usize, r: usize) -> Self {
        assert!(r >= 1, "need at least one walk segment per node");
        WalkStore {
            r,
            segments: vec![WalkSegment::default(); node_count * r],
            visitors: vec![HashMap::new(); node_count],
            visit_counts: vec![0; node_count],
            total_visits: 0,
        }
    }

    /// Number of segments stored per node.
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Number of nodes the store currently addresses.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.visit_counts.len()
    }

    /// Grows the store to address at least `n` nodes (new nodes start with empty
    /// segments).
    pub fn ensure_nodes(&mut self, n: usize) {
        if n <= self.node_count() {
            return;
        }
        self.segments.resize(n * self.r, WalkSegment::default());
        self.visitors.resize(n, HashMap::new());
        self.visit_counts.resize(n, 0);
    }

    /// Ids of the `R` segments whose source is `node`.
    pub fn segment_ids_of(&self, node: NodeId) -> impl Iterator<Item = SegmentId> + '_ {
        let r = self.r;
        (0..r).map(move |slot| SegmentId::new(node, slot, r))
    }

    /// The segment with the given id.
    #[inline]
    pub fn segment(&self, id: SegmentId) -> &WalkSegment {
        &self.segments[id.index()]
    }

    /// The source node of a segment id.
    #[inline]
    pub fn source_of(&self, id: SegmentId) -> NodeId {
        id.source(self.r)
    }

    /// Replaces the path of segment `id`, keeping every index consistent.
    ///
    /// # Panics
    ///
    /// Panics if the new path is non-empty and does not start at the segment's source
    /// node, or if it visits a node outside the store.
    pub fn set_segment(&mut self, id: SegmentId, path: Vec<NodeId>) {
        let source = self.source_of(id);
        if let Some(&first) = path.first() {
            assert_eq!(
                first, source,
                "segment {id:?} must start at its source node {source}"
            );
        }
        for &v in &path {
            assert!(
                v.index() < self.node_count(),
                "segment visits node {v} outside the store (node_count = {})",
                self.node_count()
            );
        }
        self.remove_from_index(id);
        self.add_to_index(id, &path);
        self.segments[id.index()] = WalkSegment::new(path);
    }

    /// Clears the segment with the given id (used before regenerating it from scratch).
    pub fn clear_segment(&mut self, id: SegmentId) {
        self.remove_from_index(id);
        self.segments[id.index()] = WalkSegment::default();
    }

    fn add_to_index(&mut self, id: SegmentId, path: &[NodeId]) {
        for &v in path {
            *self.visitors[v.index()].entry(id).or_insert(0) += 1;
            self.visit_counts[v.index()] += 1;
        }
        self.total_visits += path.len() as u64;
    }

    fn remove_from_index(&mut self, id: SegmentId) {
        let old_path = std::mem::take(&mut self.segments[id.index()]).into_path();
        for &v in &old_path {
            let entry = self.visitors[v.index()]
                .get_mut(&id)
                .expect("visit index out of sync with segment path");
            *entry -= 1;
            if *entry == 0 {
                self.visitors[v.index()].remove(&id);
            }
            self.visit_counts[v.index()] -= 1;
        }
        self.total_visits -= old_path.len() as u64;
    }

    /// The segments that currently visit `node`, with their visit multiplicities.
    pub fn segments_visiting(&self, node: NodeId) -> impl Iterator<Item = (SegmentId, u32)> + '_ {
        self.visitors[node.index()]
            .iter()
            .map(|(&id, &count)| (id, count))
    }

    /// Number of distinct segments visiting `node`.
    pub fn distinct_visitors(&self, node: NodeId) -> usize {
        self.visitors[node.index()].len()
    }

    /// Total walk-segment visits to `node` — the paper's `W(v)` counter and the
    /// estimator's `X_v`.
    #[inline]
    pub fn visit_count(&self, node: NodeId) -> u64 {
        self.visit_counts[node.index()]
    }

    /// The full visit-count vector, indexed by node.
    pub fn visit_counts(&self) -> &[u64] {
        &self.visit_counts
    }

    /// Sum of all visit counts (total stored walk length).
    #[inline]
    pub fn total_visits(&self) -> u64 {
        self.total_visits
    }

    /// The probability `1 - (1 - 1/d)^{W(v)}` used by Section 2.2 to decide, on arrival
    /// of an edge out of `node` whose source now has out-degree `d`, whether the
    /// PageRank Store needs to be consulted at all.
    pub fn update_probability(&self, node: NodeId, out_degree: usize) -> f64 {
        if out_degree == 0 {
            return 0.0;
        }
        let w = self.visit_count(node);
        1.0 - (1.0 - 1.0 / out_degree as f64).powi(i32::try_from(w.min(i32::MAX as u64)).unwrap())
    }

    /// Debug check: recomputes the visit index from scratch and compares.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut counts = vec![0u64; self.node_count()];
        let mut total = 0u64;
        for seg in &self.segments {
            for &v in seg.path() {
                counts[v.index()] += 1;
                total += 1;
            }
        }
        if counts != self.visit_counts {
            return Err("visit_counts out of sync with stored segments".to_string());
        }
        if total != self.total_visits {
            return Err(format!(
                "total_visits is {} but segments hold {total} visits",
                self.total_visits
            ));
        }
        for (v, visitors) in self.visitors.iter().enumerate() {
            let expected: u64 = visitors.values().map(|&c| c as u64).sum();
            if expected != self.visit_counts[v] {
                return Err(format!(
                    "visitor index for node {v} sums to {expected}, expected {}",
                    self.visit_counts[v]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(nodes: &[u32]) -> Vec<NodeId> {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    #[test]
    fn set_segment_updates_indexes() {
        let mut store = WalkStore::new(4, 2);
        let id = SegmentId::new(NodeId(0), 0, 2);
        store.set_segment(id, path(&[0, 1, 2, 1]));
        assert_eq!(store.visit_count(NodeId(1)), 2);
        assert_eq!(store.visit_count(NodeId(0)), 1);
        assert_eq!(store.total_visits(), 4);
        assert_eq!(store.distinct_visitors(NodeId(1)), 1);
        assert!(store.check_consistency().is_ok());
    }

    #[test]
    fn replacing_a_segment_removes_old_visits() {
        let mut store = WalkStore::new(4, 1);
        let id = SegmentId::new(NodeId(0), 0, 1);
        store.set_segment(id, path(&[0, 1, 2]));
        store.set_segment(id, path(&[0, 3]));
        assert_eq!(store.visit_count(NodeId(1)), 0);
        assert_eq!(store.visit_count(NodeId(2)), 0);
        assert_eq!(store.visit_count(NodeId(3)), 1);
        assert_eq!(store.total_visits(), 2);
        assert_eq!(store.distinct_visitors(NodeId(1)), 0);
        assert!(store.check_consistency().is_ok());
    }

    #[test]
    fn clear_segment_resets_everything_it_touched() {
        let mut store = WalkStore::new(3, 1);
        let id = SegmentId::new(NodeId(1), 0, 1);
        store.set_segment(id, path(&[1, 2, 2]));
        store.clear_segment(id);
        assert!(store.segment(id).is_empty());
        assert_eq!(store.total_visits(), 0);
        assert_eq!(store.visit_count(NodeId(2)), 0);
        assert!(store.check_consistency().is_ok());
    }

    #[test]
    fn multiple_segments_per_node_are_independent() {
        let mut store = WalkStore::new(3, 2);
        let a = SegmentId::new(NodeId(0), 0, 2);
        let b = SegmentId::new(NodeId(0), 1, 2);
        store.set_segment(a, path(&[0, 1]));
        store.set_segment(b, path(&[0, 2, 1]));
        assert_eq!(store.visit_count(NodeId(1)), 2);
        assert_eq!(store.distinct_visitors(NodeId(1)), 2);
        let ids: Vec<_> = store.segment_ids_of(NodeId(0)).collect();
        assert_eq!(ids, vec![a, b]);
        assert_eq!(store.source_of(b), NodeId(0));
        assert_eq!(store.segment(b).path(), path(&[0, 2, 1]).as_slice());
    }

    #[test]
    #[should_panic(expected = "must start at its source node")]
    fn segment_must_start_at_source() {
        let mut store = WalkStore::new(3, 1);
        store.set_segment(SegmentId::new(NodeId(0), 0, 1), path(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "outside the store")]
    fn segment_cannot_visit_unknown_nodes() {
        let mut store = WalkStore::new(2, 1);
        store.set_segment(SegmentId::new(NodeId(0), 0, 1), path(&[0, 5]));
    }

    #[test]
    fn ensure_nodes_grows_storage() {
        let mut store = WalkStore::new(2, 3);
        store.ensure_nodes(5);
        assert_eq!(store.node_count(), 5);
        let id = SegmentId::new(NodeId(4), 2, 3);
        store.set_segment(id, path(&[4, 1]));
        assert_eq!(store.visit_count(NodeId(4)), 1);
        // Shrinking is a no-op.
        store.ensure_nodes(1);
        assert_eq!(store.node_count(), 5);
    }

    #[test]
    fn update_probability_matches_formula() {
        let mut store = WalkStore::new(2, 1);
        store.set_segment(SegmentId::new(NodeId(0), 0, 1), path(&[0, 1, 0, 1, 0]));
        // W(0) = 3 visits, d = 2  =>  1 - (1/2)^3 = 0.875
        assert!((store.update_probability(NodeId(0), 2) - 0.875).abs() < 1e-12);
        // Zero out-degree can never reroute a walk.
        assert_eq!(store.update_probability(NodeId(0), 0), 0.0);
        // W(1) = 2 visits, d = 5  =>  1 - (4/5)^2.
        assert_eq!(
            store.update_probability(NodeId(1), 5),
            1.0 - (1.0 - 0.2f64).powi(2)
        );
    }

    #[test]
    fn empty_store_is_consistent() {
        let store = WalkStore::new(10, 2);
        assert_eq!(store.total_visits(), 0);
        assert!(store.check_consistency().is_ok());
        assert_eq!(store.visit_counts().len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one walk segment")]
    fn zero_r_rejected() {
        let _ = WalkStore::new(3, 0);
    }
}
