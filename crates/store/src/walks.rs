//! The PageRank Store: per-node cached walk segments with visit indexing.
//!
//! Section 2.1 of the paper stores `R` walk segments per node, "where each segment is
//! stored at every node that it passes through".  That secondary index is what makes
//! incremental maintenance cheap: when an edge `(u, v)` arrives, only the segments that
//! visit `u` can possibly need an update.  [`WalkStore`] keeps:
//!
//! * the segments themselves, in `R` consecutive slots per source node, laid out in a
//!   single flat [`StepArena`] — one shared step buffer with per-segment `(offset, len,
//!   cap)` slots, so a steady-state reroute rewrites its slot **in place with zero heap
//!   allocations** (see [`crate::arena`]);
//! * for every node, the segments visiting it and their multiplicities, as compact
//!   CSR-style [`VisitPostings`] — a sorted `(SegmentId, count)` run with a small delta
//!   overlay merged lazily (see [`crate::postings`]);
//! * the exact running totals: per-node visit counts (`X_v` / `W(v)` in the paper) and
//!   their sum, maintained eagerly on every write so the estimator never waits on a
//!   merge.
//!
//! Consumers read the store through the [`crate::WalkIndex`] API (`segment_path`,
//! `positions_of`, `collect_visiting`, …); no engine touches raw segment vectors.

use crate::arena::{ArenaStats, StepArena};
use crate::postings::{PostingsIter, VisitPostings};
use crate::segment::SegmentId;
use ppr_graph::NodeId;

/// Storage for `R` random-walk segments per node, indexed by visited node.
#[derive(Debug, Clone)]
pub struct WalkStore {
    r: usize,
    /// All walk steps, flat; segment `id` owns slot `id.index()`.
    arena: StepArena,
    /// For every node, which segments visit it and how many times.
    postings: Vec<VisitPostings>,
    /// Total visits per node (`X_v` / `W(v)` in the paper), maintained exactly.
    visit_counts: Vec<u64>,
    /// Sum of `visit_counts` (i.e. the total length of all stored segments).
    total_visits: u64,
}

impl WalkStore {
    /// Creates an empty store for `node_count` nodes with `r` segments per node.
    pub fn new(node_count: usize, r: usize) -> Self {
        assert!(r >= 1, "need at least one walk segment per node");
        WalkStore {
            r,
            arena: StepArena::new(node_count * r),
            postings: vec![VisitPostings::new(); node_count],
            visit_counts: vec![0; node_count],
            total_visits: 0,
        }
    }

    /// Bulk-load constructor for decode paths: installs every segment path and a
    /// **pre-computed** postings index in one pass, instead of replaying per-step
    /// `record` calls through the delta overlay (which costs an order of magnitude
    /// more on cold open).  The supplied index is fully cross-checked against the
    /// paths — one global sort of `(node, segment)` visit keys, compared run by run
    /// against the postings — so a divergent index is rejected, never installed.
    pub fn bulk_load<'a>(
        node_count: usize,
        r: usize,
        segments: impl Iterator<Item = (SegmentId, &'a [NodeId])>,
        postings: Vec<VisitPostings>,
    ) -> Result<Self, String> {
        if r == 0 {
            return Err("need at least one walk segment per node".to_string());
        }
        if postings.len() != node_count {
            return Err(format!(
                "got postings for {} nodes, expected {node_count}",
                postings.len()
            ));
        }
        let mut arena = StepArena::new(node_count * r);
        let mut visit_counts = vec![0u64; node_count];
        let mut keys: Vec<u64> = Vec::new();
        for (id, path) in segments {
            if id.index() >= node_count * r {
                return Err(format!("segment {id:?} outside the store"));
            }
            if let Some(&first) = path.first() {
                if first != id.source(r) {
                    return Err(format!("segment {id:?} does not start at its source"));
                }
            }
            for &v in path {
                if v.index() >= node_count {
                    return Err(format!("segment {id:?} visits node {v} outside the store"));
                }
                visit_counts[v.index()] += 1;
                keys.push(((v.0 as u64) << 32) | id.0 as u64);
            }
            arena.write(id.index(), path);
        }
        keys.sort_unstable();
        let mut i = 0usize;
        for (v, node_postings) in postings.iter().enumerate() {
            let mut expect = node_postings.iter();
            while i < keys.len() && (keys[i] >> 32) as usize == v {
                let seg = keys[i] as u32;
                let mut count = 0u32;
                while i < keys.len() && (keys[i] >> 32) as usize == v && keys[i] as u32 == seg {
                    count += 1;
                    i += 1;
                }
                if expect.next() != Some((SegmentId(seg), count)) {
                    return Err(format!(
                        "postings of node {v} disagree with the stored paths at segment {seg}"
                    ));
                }
            }
            if expect.next().is_some() {
                return Err(format!(
                    "postings of node {v} index visits no path contains"
                ));
            }
        }
        let total_visits = keys.len() as u64;
        Ok(WalkStore {
            r,
            arena,
            postings,
            visit_counts,
            total_visits,
        })
    }

    /// Demand-paging constructor: installs a pre-parsed postings index and the visit
    /// counters it implies over an **empty** step arena.  The paths themselves stay
    /// on disk; the owner faults them in lazily and installs each one with
    /// [`Self::install_indexed_path`].  The only cross-check possible without the
    /// paths is the aggregate one — per-node totals summing to `total_visits`; path
    /// shape is validated per segment at fault time instead.
    pub fn from_postings_index(
        node_count: usize,
        r: usize,
        postings: Vec<VisitPostings>,
        total_visits: u64,
    ) -> Result<Self, String> {
        if r == 0 {
            return Err("need at least one walk segment per node".to_string());
        }
        if postings.len() != node_count {
            return Err(format!(
                "got postings for {} nodes, expected {node_count}",
                postings.len()
            ));
        }
        let mut visit_counts = vec![0u64; node_count];
        let mut sum = 0u64;
        for (v, node_postings) in postings.iter().enumerate() {
            let total = node_postings.total();
            visit_counts[v] = total;
            sum += total;
        }
        if sum != total_visits {
            return Err(format!(
                "postings sum to {sum} visits but the index claims {total_visits}"
            ));
        }
        Ok(WalkStore {
            r,
            arena: StepArena::new(node_count * r),
            postings,
            visit_counts,
            total_visits,
        })
    }

    /// Installs `path` into segment `id`'s arena slot **without touching the visit
    /// index** — the postings and counters must already account for exactly this
    /// path.  This is the materialization half of demand paging: the index was
    /// installed wholesale by [`Self::from_postings_index`], the paths arrive one at
    /// a time as the disk store faults them.
    pub fn install_indexed_path(&mut self, id: SegmentId, path: &[NodeId]) {
        debug_assert_eq!(
            self.arena.len_of(id.index()),
            0,
            "slot already materialized"
        );
        debug_assert!(
            path.first()
                .is_none_or(|&first| first == self.source_of(id)),
            "segment {id:?} does not start at its source"
        );
        self.arena.write(id.index(), path);
    }

    /// Number of segments stored per node.
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Number of nodes the store currently addresses.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.visit_counts.len()
    }

    /// Grows the store to address at least `n` nodes (new nodes start with empty
    /// segments).
    pub fn ensure_nodes(&mut self, n: usize) {
        if n <= self.node_count() {
            return;
        }
        self.arena.ensure_slots(n * self.r);
        self.postings.resize_with(n, VisitPostings::new);
        self.visit_counts.resize(n, 0);
    }

    /// Ids of the `R` segments whose source is `node`.
    pub fn segment_ids_of(&self, node: NodeId) -> impl Iterator<Item = SegmentId> + '_ {
        let r = self.r;
        (0..r).map(move |slot| SegmentId::new(node, slot, r))
    }

    /// The stored path of segment `id`, as a slice of the shared step arena.  Empty if
    /// the segment has not been generated yet.
    #[inline]
    pub fn segment_path(&self, id: SegmentId) -> &[NodeId] {
        self.arena.path(id.index())
    }

    /// Number of visits in segment `id`.
    #[inline]
    pub fn segment_len(&self, id: SegmentId) -> usize {
        self.arena.len_of(id.index())
    }

    /// `true` when segment `id` has not been generated yet.
    #[inline]
    pub fn segment_is_empty(&self, id: SegmentId) -> bool {
        self.segment_len(id) == 0
    }

    /// The first visit of segment `id` (its source), if generated.
    #[inline]
    pub fn segment_source(&self, id: SegmentId) -> Option<NodeId> {
        self.segment_path(id).first().copied()
    }

    /// The last visit of segment `id` (where the reset happened), if generated.
    #[inline]
    pub fn segment_last(&self, id: SegmentId) -> Option<NodeId> {
        self.segment_path(id).last().copied()
    }

    /// Positions (indices into the path) at which segment `id` visits `node`, in
    /// increasing order, without allocating.
    pub fn positions_of(&self, id: SegmentId, node: NodeId) -> impl Iterator<Item = usize> + '_ {
        self.segment_path(id)
            .iter()
            .enumerate()
            .filter_map(move |(i, &v)| (v == node).then_some(i))
    }

    /// The first position at which segment `id` traverses the directed edge
    /// `from -> to`, if any.
    pub fn first_traversal(&self, id: SegmentId, from: NodeId, to: NodeId) -> Option<usize> {
        self.segment_path(id)
            .windows(2)
            .position(|w| w[0] == from && w[1] == to)
    }

    /// Whether segment `id` traverses the directed edge `from -> to` at any step.
    pub fn uses_edge(&self, id: SegmentId, from: NodeId, to: NodeId) -> bool {
        self.first_traversal(id, from, to).is_some()
    }

    /// The source node of a segment id.
    #[inline]
    pub fn source_of(&self, id: SegmentId) -> NodeId {
        id.source(self.r)
    }

    /// Replaces the path of segment `id`, keeping every index consistent.  A rewrite
    /// that fits the segment's arena slot performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if the new path is non-empty and does not start at the segment's source
    /// node, or if it visits a node outside the store.
    pub fn set_segment(&mut self, id: SegmentId, path: &[NodeId]) {
        let source = self.source_of(id);
        if let Some(&first) = path.first() {
            assert_eq!(
                first, source,
                "segment {id:?} must start at its source node {source}"
            );
        }
        for &v in path {
            assert!(
                v.index() < self.node_count(),
                "segment visits node {v} outside the store (node_count = {})",
                self.node_count()
            );
        }
        self.remove_from_index(id);
        for &v in path {
            self.postings[v.index()].record(id, 1);
            self.visit_counts[v.index()] += 1;
        }
        self.total_visits += path.len() as u64;
        self.arena.write(id.index(), path);
    }

    /// Clears the segment with the given id (used before regenerating it from scratch).
    pub fn clear_segment(&mut self, id: SegmentId) {
        self.remove_from_index(id);
        self.arena.clear(id.index());
    }

    fn remove_from_index(&mut self, id: SegmentId) {
        let old_path = self.arena.path(id.index());
        for &v in old_path {
            self.postings[v.index()].record(id, -1);
            self.visit_counts[v.index()] -= 1;
        }
        self.total_visits -= old_path.len() as u64;
    }

    /// The segments that currently visit `node`, with their visit multiplicities, in
    /// increasing segment-id order.
    pub fn segments_visiting(&self, node: NodeId) -> PostingsIter<'_> {
        self.postings[node.index()].iter()
    }

    /// Collects the ids of the segments visiting `node` into `out` (cleared first).
    /// This is the arrival hot path: a reusable buffer keeps it allocation-free in
    /// steady state.
    pub fn collect_visiting(&self, node: NodeId, out: &mut Vec<SegmentId>) {
        out.clear();
        out.extend(self.postings[node.index()].iter().map(|(id, _)| id));
    }

    /// Number of distinct segments visiting `node`.
    pub fn distinct_visitors(&self, node: NodeId) -> usize {
        self.postings[node.index()].distinct()
    }

    /// Total walk-segment visits to `node` — the paper's `W(v)` counter and the
    /// estimator's `X_v`.
    #[inline]
    pub fn visit_count(&self, node: NodeId) -> u64 {
        self.visit_counts[node.index()]
    }

    /// The full visit-count vector, indexed by node.
    pub fn visit_counts(&self) -> &[u64] {
        &self.visit_counts
    }

    /// Sum of all visit counts (total stored walk length).
    #[inline]
    pub fn total_visits(&self) -> u64 {
        self.total_visits
    }

    /// Allocation-behaviour counters of the backing step arena.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Sets the arena's compaction trigger ratio (see
    /// [`crate::arena::StepArena::set_compaction_threshold`]).
    pub fn set_compaction_threshold(&mut self, ratio: f64) {
        self.arena.set_compaction_threshold(ratio);
    }

    /// Freezes an epoch-pinned, copy-on-write snapshot view of the store (see
    /// [`crate::view::FrozenWalks`]): readers on other threads query the view while
    /// this store keeps mutating.
    pub fn snapshot_view(&self, epoch: u64) -> crate::view::FrozenWalks {
        crate::view::FrozenWalks::from_index(self, epoch)
    }

    /// The probability `1 - (1 - 1/d)^{W(v)}` used by Section 2.2 to decide, on arrival
    /// of an edge out of `node` whose source now has out-degree `d`, whether the
    /// PageRank Store needs to be consulted at all.
    pub fn update_probability(&self, node: NodeId, out_degree: usize) -> f64 {
        if out_degree == 0 {
            return 0.0;
        }
        let w = self.visit_count(node);
        1.0 - (1.0 - 1.0 / out_degree as f64).powi(i32::try_from(w.min(i32::MAX as u64)).unwrap())
    }

    /// Debug check: recomputes the visit index from scratch and compares.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut counts = vec![0u64; self.node_count()];
        let mut total = 0u64;
        for slot in 0..self.arena.slot_count() {
            for &v in self.arena.path(slot) {
                counts[v.index()] += 1;
                total += 1;
            }
        }
        if counts != self.visit_counts {
            return Err("visit_counts out of sync with stored segments".to_string());
        }
        if total != self.total_visits {
            return Err(format!(
                "total_visits is {} but segments hold {total} visits",
                self.total_visits
            ));
        }
        for (v, postings) in self.postings.iter().enumerate() {
            let expected = postings.total();
            if expected != self.visit_counts[v] {
                return Err(format!(
                    "postings for node {v} sum to {expected}, expected {}",
                    self.visit_counts[v]
                ));
            }
            // Spot-check each posting against the arena.
            for (id, count) in postings.iter() {
                let actual = self
                    .segment_path(id)
                    .iter()
                    .filter(|&&n| n.index() == v)
                    .count() as u32;
                if actual != count {
                    return Err(format!(
                        "posting ({id:?}, {count}) at node {v} disagrees with the arena ({actual})"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(nodes: &[u32]) -> Vec<NodeId> {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    #[test]
    fn set_segment_updates_indexes() {
        let mut store = WalkStore::new(4, 2);
        let id = SegmentId::new(NodeId(0), 0, 2);
        store.set_segment(id, &path(&[0, 1, 2, 1]));
        assert_eq!(store.visit_count(NodeId(1)), 2);
        assert_eq!(store.visit_count(NodeId(0)), 1);
        assert_eq!(store.total_visits(), 4);
        assert_eq!(store.distinct_visitors(NodeId(1)), 1);
        assert!(store.check_consistency().is_ok());
    }

    #[test]
    fn replacing_a_segment_removes_old_visits() {
        let mut store = WalkStore::new(4, 1);
        let id = SegmentId::new(NodeId(0), 0, 1);
        store.set_segment(id, &path(&[0, 1, 2]));
        store.set_segment(id, &path(&[0, 3]));
        assert_eq!(store.visit_count(NodeId(1)), 0);
        assert_eq!(store.visit_count(NodeId(2)), 0);
        assert_eq!(store.visit_count(NodeId(3)), 1);
        assert_eq!(store.total_visits(), 2);
        assert_eq!(store.distinct_visitors(NodeId(1)), 0);
        assert!(store.check_consistency().is_ok());
    }

    #[test]
    fn clear_segment_resets_everything_it_touched() {
        let mut store = WalkStore::new(3, 1);
        let id = SegmentId::new(NodeId(1), 0, 1);
        store.set_segment(id, &path(&[1, 2, 2]));
        store.clear_segment(id);
        assert!(store.segment_is_empty(id));
        assert_eq!(store.total_visits(), 0);
        assert_eq!(store.visit_count(NodeId(2)), 0);
        assert!(store.check_consistency().is_ok());
    }

    #[test]
    fn multiple_segments_per_node_are_independent() {
        let mut store = WalkStore::new(3, 2);
        let a = SegmentId::new(NodeId(0), 0, 2);
        let b = SegmentId::new(NodeId(0), 1, 2);
        store.set_segment(a, &path(&[0, 1]));
        store.set_segment(b, &path(&[0, 2, 1]));
        assert_eq!(store.visit_count(NodeId(1)), 2);
        assert_eq!(store.distinct_visitors(NodeId(1)), 2);
        let ids: Vec<_> = store.segment_ids_of(NodeId(0)).collect();
        assert_eq!(ids, vec![a, b]);
        assert_eq!(store.source_of(b), NodeId(0));
        assert_eq!(store.segment_path(b), path(&[0, 2, 1]).as_slice());
    }

    #[test]
    fn path_queries_read_through_the_arena() {
        let mut store = WalkStore::new(4, 1);
        let id = SegmentId::new(NodeId(0), 0, 1);
        store.set_segment(id, &path(&[0, 1, 2, 1]));
        assert_eq!(store.segment_len(id), 4);
        assert_eq!(store.segment_source(id), Some(NodeId(0)));
        assert_eq!(store.segment_last(id), Some(NodeId(1)));
        assert_eq!(
            store.positions_of(id, NodeId(1)).collect::<Vec<_>>(),
            [1, 3]
        );
        assert!(store.uses_edge(id, NodeId(1), NodeId(2)));
        assert!(!store.uses_edge(id, NodeId(2), NodeId(0)));
        assert_eq!(store.first_traversal(id, NodeId(2), NodeId(1)), Some(2));
    }

    #[test]
    #[should_panic(expected = "must start at its source node")]
    fn segment_must_start_at_source() {
        let mut store = WalkStore::new(3, 1);
        store.set_segment(SegmentId::new(NodeId(0), 0, 1), &path(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "outside the store")]
    fn segment_cannot_visit_unknown_nodes() {
        let mut store = WalkStore::new(2, 1);
        store.set_segment(SegmentId::new(NodeId(0), 0, 1), &path(&[0, 5]));
    }

    #[test]
    fn ensure_nodes_grows_storage() {
        let mut store = WalkStore::new(2, 3);
        store.ensure_nodes(5);
        assert_eq!(store.node_count(), 5);
        let id = SegmentId::new(NodeId(4), 2, 3);
        store.set_segment(id, &path(&[4, 1]));
        assert_eq!(store.visit_count(NodeId(4)), 1);
        // Shrinking is a no-op.
        store.ensure_nodes(1);
        assert_eq!(store.node_count(), 5);
    }

    #[test]
    fn update_probability_matches_formula() {
        let mut store = WalkStore::new(2, 1);
        store.set_segment(SegmentId::new(NodeId(0), 0, 1), &path(&[0, 1, 0, 1, 0]));
        // W(0) = 3 visits, d = 2  =>  1 - (1/2)^3 = 0.875
        assert!((store.update_probability(NodeId(0), 2) - 0.875).abs() < 1e-12);
        // Zero out-degree can never reroute a walk.
        assert_eq!(store.update_probability(NodeId(0), 0), 0.0);
        // W(1) = 2 visits, d = 5  =>  1 - (4/5)^2.
        assert_eq!(
            store.update_probability(NodeId(1), 5),
            1.0 - (1.0 - 0.2f64).powi(2)
        );
    }

    #[test]
    fn empty_store_is_consistent() {
        let store = WalkStore::new(10, 2);
        assert_eq!(store.total_visits(), 0);
        assert!(store.check_consistency().is_ok());
        assert_eq!(store.visit_counts().len(), 10);
    }

    #[test]
    fn steady_state_rewrites_do_not_allocate_arena_regions() {
        let mut store = WalkStore::new(4, 1);
        let id = SegmentId::new(NodeId(0), 0, 1);
        store.set_segment(id, &path(&[0, 1, 2]));
        let relocations = store.arena_stats().relocations;
        // Rewrites of comparable length reuse the slot: no relocation, no allocation.
        for round in 0..200u32 {
            let p = if round % 2 == 0 {
                path(&[0, 3, 2, 1])
            } else {
                path(&[0, 1])
            };
            store.set_segment(id, &p);
        }
        assert_eq!(
            store.arena_stats().relocations,
            relocations,
            "steady-state rewrites must be in place"
        );
        assert!(store.check_consistency().is_ok());
    }

    #[test]
    fn collect_visiting_matches_segments_visiting() {
        let mut store = WalkStore::new(5, 2);
        store.set_segment(SegmentId::new(NodeId(0), 0, 2), &path(&[0, 2, 3]));
        store.set_segment(SegmentId::new(NodeId(1), 1, 2), &path(&[1, 2]));
        let mut buf = Vec::new();
        store.collect_visiting(NodeId(2), &mut buf);
        let from_iter: Vec<SegmentId> = store
            .segments_visiting(NodeId(2))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(buf, from_iter);
        assert_eq!(buf.len(), 2);
        // The buffer is cleared on reuse.
        store.collect_visiting(NodeId(4), &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one walk segment")]
    fn zero_r_rejected() {
        let _ = WalkStore::new(3, 0);
    }

    #[test]
    fn bulk_load_reproduces_an_incrementally_built_store() {
        let mut reference = WalkStore::new(5, 2);
        reference.set_segment(SegmentId::new(NodeId(0), 0, 2), &path(&[0, 1, 2, 1]));
        reference.set_segment(SegmentId::new(NodeId(3), 1, 2), &path(&[3, 3]));
        reference.set_segment(SegmentId::new(NodeId(4), 0, 2), &path(&[4, 0]));

        let segments: Vec<(SegmentId, Vec<NodeId>)> = (0..10u32)
            .map(|s| (SegmentId(s), reference.segment_path(SegmentId(s)).to_vec()))
            .filter(|(_, p)| !p.is_empty())
            .collect();
        let postings: Vec<crate::VisitPostings> = (0..5)
            .map(|v| {
                crate::VisitPostings::from_sorted_run(
                    reference.segments_visiting(NodeId(v)).collect(),
                )
                .unwrap()
            })
            .collect();
        let loaded = WalkStore::bulk_load(
            5,
            2,
            segments.iter().map(|(id, p)| (*id, p.as_slice())),
            postings,
        )
        .unwrap();
        assert_eq!(loaded.visit_counts(), reference.visit_counts());
        assert_eq!(loaded.total_visits(), reference.total_visits());
        for s in 0..10u32 {
            assert_eq!(
                loaded.segment_path(SegmentId(s)),
                reference.segment_path(SegmentId(s))
            );
        }
        assert!(loaded.check_consistency().is_ok());
    }

    #[test]
    fn bulk_load_rejects_an_index_that_disagrees_with_the_paths() {
        let segments = [(SegmentId(0), path(&[0, 1]))];
        // Postings claim a visit to node 2 that no path contains.
        let postings: Vec<crate::VisitPostings> = vec![
            crate::VisitPostings::from_sorted_run(vec![(SegmentId(0), 1)]).unwrap(),
            crate::VisitPostings::from_sorted_run(vec![(SegmentId(0), 1)]).unwrap(),
            crate::VisitPostings::from_sorted_run(vec![(SegmentId(0), 1)]).unwrap(),
        ];
        let result = WalkStore::bulk_load(
            3,
            1,
            segments.iter().map(|(id, p)| (*id, p.as_slice())),
            postings,
        );
        assert!(result.unwrap_err().contains("no path contains"));
        // Wrong count is also rejected.
        let postings: Vec<crate::VisitPostings> = vec![
            crate::VisitPostings::from_sorted_run(vec![(SegmentId(0), 2)]).unwrap(),
            crate::VisitPostings::from_sorted_run(vec![(SegmentId(0), 1)]).unwrap(),
            crate::VisitPostings::new(),
        ];
        let result = WalkStore::bulk_load(
            3,
            1,
            segments.iter().map(|(id, p)| (*id, p.as_slice())),
            postings,
        );
        assert!(result.unwrap_err().contains("disagree"));
    }
}
