//! Canonical PageRank-Store digests for differential testing.
//!
//! Every differential oracle in this workspace ends in the same comparison: two
//! stores must agree on node counts, segment counts, `total_visits`, per-node
//! visit counters, visit postings, and every stored segment path.  [`StoreDigest`]
//! folds all of that into one comparable value computed through the [`WalkIndex`]
//! surface, so harnesses that hold many final states (the scenario corpus runs one
//! reference plus a fault matrix per scenario) can compare them without keeping
//! whole stores alive.  The fold order is the store's own deterministic iteration
//! order, which every layout (flat, sharded, disk) already produces identically —
//! that identity is exactly what `tests/differential_shard.rs` proves field by
//! field, and the digest is its compressed form.
//!
//! A digest match is a fingerprint, not a proof: harnesses should still do one
//! full field-by-field comparison per configuration (collisions are astronomically
//! unlikely but the full compare produces a useful diff when something breaks).

use crate::index::WalkIndex;
use ppr_graph::NodeId;

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` into an FNV-1a accumulator byte by byte.
fn fold(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A compact, comparable summary of one PageRank Store's full logical state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreDigest {
    /// Number of nodes the store addresses.
    pub node_count: usize,
    /// Walk segments per node (the paper's `R`).
    pub r: usize,
    /// Total stored visits across all segments.
    pub total_visits: u64,
    /// FNV-1a fold over visit counters, postings, and every segment path, in the
    /// store's deterministic iteration order.
    pub fingerprint: u64,
}

impl StoreDigest {
    /// Digests `store` through the `WalkIndex` read surface.  Two stores holding
    /// bit-identical logical state produce equal digests regardless of layout.
    pub fn of<W: WalkIndex + ?Sized>(store: &W) -> Self {
        let node_count = store.node_count();
        let mut fingerprint = FNV_OFFSET;
        for g in 0..node_count {
            let node = NodeId::from_index(g);
            fingerprint = fold(fingerprint, store.visit_count(node));
            for (id, count) in store.segments_visiting(node) {
                fingerprint = fold(fingerprint, id.index() as u64);
                fingerprint = fold(fingerprint, count as u64);
            }
            for id in store.segment_ids_of(node) {
                fingerprint = fold(fingerprint, store.segment_path(id).len() as u64);
                for &visit in store.segment_path(id) {
                    fingerprint = fold(fingerprint, visit.0 as u64);
                }
            }
        }
        StoreDigest {
            node_count,
            r: store.r(),
            total_visits: store.total_visits(),
            fingerprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentId;
    use crate::sharded::ShardedWalkStore;
    use crate::walks::WalkStore;
    use crate::WalkIndexMut;

    fn path(nodes: &[u32]) -> Vec<NodeId> {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    #[test]
    fn identical_state_digests_identically_across_layouts() {
        let (n, r) = (10usize, 2usize);
        let mut flat = WalkStore::new(n, r);
        let mut sharded = ShardedWalkStore::new(n, r, 3);
        for node in 0..n as u32 {
            let id = SegmentId::new(NodeId(node), 0, r);
            let p = path(&[node, (node + 1) % n as u32, (node + 5) % n as u32]);
            flat.set_segment(id, &p);
            sharded.set_segment(id, &p);
        }
        assert_eq!(StoreDigest::of(&flat), StoreDigest::of(&sharded));
    }

    #[test]
    fn any_state_difference_changes_the_digest() {
        let (n, r) = (6usize, 2usize);
        let mut a = WalkStore::new(n, r);
        let mut b = WalkStore::new(n, r);
        let id = SegmentId::new(NodeId(1), 1, r);
        a.set_segment(id, &path(&[1, 2, 3]));
        b.set_segment(id, &path(&[1, 2, 4]));
        let (da, db) = (StoreDigest::of(&a), StoreDigest::of(&b));
        assert_eq!(da.total_visits, db.total_visits);
        assert_ne!(da, db, "one differing visit must change the fingerprint");

        // Clearing the segment differs from never having set it only in arena
        // internals, not logical state: digests must agree with a fresh store.
        b.clear_segment(id);
        assert_eq!(StoreDigest::of(&b), StoreDigest::of(&WalkStore::new(n, r)));
    }
}
