//! Epoch-pinned snapshot views: the read-side half of snapshot-isolated serving.
//!
//! The live stores mutate in place — an in-place arena rewrite is exactly what makes
//! maintenance fast — so a reader on another thread can never safely look at them
//! while a batch applies.  This module provides the immutable counterpart:
//!
//! * [`FrozenWalks`] — a frozen PageRank Store generation implementing the full
//!   [`WalkIndexView`] query surface.  Storage is **chunked copy-on-write** behind a
//!   two-level spine (`Arc` root → `Arc` blocks of `B` chunk
//!   pointers → `Arc` leaf chunks), so cloning a generation is O(1) — one root
//!   refcount bump — and advancing it by a batch ([`FrozenWalks::apply_rewrites`])
//!   re-copies only the leaf chunks the batch touched, the spine blocks pointing at
//!   them, and the root: O(touched + √chunks) pointer traffic, while every untouched
//!   chunk stays shared with the published generations readers still pin.
//! * [`FrozenGraph`] — the matching frozen Social-Store adjacency (out- and
//!   in-neighbours, chunked the same way), implementing [`ppr_graph::GraphView`], so
//!   walks and SALSA queries run against it unchanged.
//! * [`AdjacencyFetch`] — the data-access model of the paper's personalized walker
//!   (Algorithm 1): one *fetch* returns a node's full out-adjacency.  Implemented by
//!   the live [`crate::SocialStore`] (with fetch accounting) and by [`FrozenGraph`],
//!   so the walker serves from a live store or from a pinned generation with the same
//!   code — and, crucially, the same RNG stream, which is what makes a concurrently
//!   served query bit-identical to its single-threaded replay.
//!
//! The writer keeps one mutable [`FrozenWalks`]/[`FrozenGraph`] *mirror*, advances it
//! after every batch from the engine's own reconciled rewrite plan, and publishes a
//! clone as the next generation (see `ppr-serve`).  Readers pin a generation by
//! cloning one `Arc` and then proceed without any further synchronisation: every
//! chunk they can reach is immutable.

use crate::index::WalkIndexView;
use crate::segment::SegmentId;
use crate::SegmentRewrites;
use ppr_graph::{Edge, GraphView, NodeId};
use std::sync::Arc;

/// Segments per copy-on-write walk chunk.  Small enough that a batch rewriting a few
/// hundred segments copies a few hundred small chunks (and the per-rewrite splice
/// shifts little), large enough that the spine (one `Arc` per chunk) stays tiny
/// relative to the data.
pub const SEGMENTS_PER_CHUNK: usize = 32;

/// Nodes per copy-on-write visit-count chunk.  A chunk is a flat `u64` array, so its
/// copy is one memcpy; 128 keeps that at 1 KiB while visit locality (hubs draw most
/// rewritten steps) keeps the number of copied chunks per batch small.
pub const COUNTS_PER_CHUNK: usize = 128;

/// Nodes per copy-on-write adjacency chunk.  Adjacency chunks are flat CSR arenas
/// (see `AdjChunk`), so copying one is a memcpy of the member nodes' lists — small
/// chunks keep the bill per touched endpoint down to a few hundred bytes.
pub const NODES_PER_GRAPH_CHUNK: usize = 16;

/// Leaf chunks per walk-spine block (see `Spine`); `B ≈ √C` for a few-thousand-node
/// store's segment chunk count `C`.
pub const WALK_BLOCK: usize = 32;

/// Leaf chunks per visit-count-spine block.
pub const COUNT_BLOCK: usize = 16;

/// Leaf chunks per adjacency-spine block.
pub const GRAPH_BLOCK: usize = 16;

/// Copy-on-write work one `Spine` performed since its counters were last drained:
/// how many leaf chunks and spine blocks `Arc::make_mut` actually re-copied because a
/// published generation still shared them.  The serving layer aggregates these into
/// its per-commit `CommitStats`; the regression contract is that a small batch copies
/// O(batch) leaves and O(1) blocks, never O(store).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpineCopyStats {
    /// Leaf chunks re-copied because a pinned generation still shared them.
    pub chunks_copied: u64,
    /// Spine blocks (pointer arrays of `B` chunk `Arc`s) re-copied.
    pub blocks_copied: u64,
}

impl SpineCopyStats {
    /// Component-wise sum.
    pub fn merge(self, other: SpineCopyStats) -> SpineCopyStats {
        SpineCopyStats {
            chunks_copied: self.chunks_copied + other.chunks_copied,
            blocks_copied: self.blocks_copied + other.blocks_copied,
        }
    }
}

/// The two-level copy-on-write chunk spine: an `Arc` root of `Arc` blocks of `Arc`
/// leaf chunks.
///
/// Cloning a spine bumps exactly one refcount (the root).  Mutating leaf `i` after a
/// clone re-copies, at most, the root pointer array, the one block holding `i`, and
/// leaf `i` itself — everything else stays structurally shared with every pinned
/// generation.  `Spine::get_mut` counts the copies it forces so the serving layer
/// can prove commits stay O(touched).
#[derive(Debug, Clone)]
struct Spine<T, const B: usize> {
    root: Arc<Vec<Arc<Vec<Arc<T>>>>>,
    /// Total leaf chunks (the last block may be partial).
    len: usize,
    copies: SpineCopyStats,
}

impl<T: Clone, const B: usize> Spine<T, B> {
    fn new() -> Self {
        Spine {
            root: Arc::new(Vec::new()),
            len: 0,
            copies: SpineCopyStats::default(),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> &T {
        &self.root[i / B][i % B]
    }

    /// Mutable access to leaf `i`, re-copying (and counting) only the root, block and
    /// leaf still shared with a pinned generation.
    fn get_mut(&mut self, i: usize) -> &mut T {
        let (bi, li) = (i / B, i % B);
        // Measure sharing top-down *before* any copy: re-copying the root bumps every
        // block's refcount (and a block copy every leaf's), so a shared ancestor
        // forces copies all the way down.
        let root_shared = Arc::strong_count(&self.root) > 1;
        let block_shared = root_shared || Arc::strong_count(&self.root[bi]) > 1;
        let leaf_shared = block_shared || Arc::strong_count(&self.root[bi][li]) > 1;
        self.copies.blocks_copied += block_shared as u64;
        self.copies.chunks_copied += leaf_shared as u64;
        let root = Arc::make_mut(&mut self.root);
        let block = Arc::make_mut(&mut root[bi]);
        Arc::make_mut(&mut block[li])
    }

    /// Grows the spine to at least `target` leaves, filling new slots with `make()`.
    /// Growth is not counted as copy-on-write work: it is O(new leaves) by nature.
    fn grow_with(&mut self, target: usize, mut make: impl FnMut() -> T) {
        if target <= self.len {
            return;
        }
        let root = Arc::make_mut(&mut self.root);
        if let Some(last) = root.last_mut() {
            if last.len() < B {
                let want = (target - self.len).min(B - last.len());
                let block = Arc::make_mut(last);
                for _ in 0..want {
                    block.push(Arc::new(make()));
                }
                self.len += want;
            }
        }
        while self.len < target {
            let want = (target - self.len).min(B);
            let mut block = Vec::with_capacity(B);
            for _ in 0..want {
                block.push(Arc::new(make()));
            }
            root.push(Arc::new(block));
            self.len += want;
        }
    }

    fn iter(&self) -> impl Iterator<Item = &T> {
        self.root
            .iter()
            .flat_map(|block| block.iter())
            .map(|a| &**a)
    }

    /// Drains the copy counters accumulated since the last drain.
    fn take_copies(&mut self) -> SpineCopyStats {
        std::mem::take(&mut self.copies)
    }

    /// Makes leaf `i` content-equal to `other`'s leaf `i` with the cheapest move
    /// available: nothing if the two spines already share the leaf, an in-place
    /// `clone_from` (no allocation) if our leaf is unique, or — when an old pinned
    /// generation still shares our leaf — adopting `other`'s leaf `Arc` outright.
    /// This is the catch-up half of the committer's generation ping-pong: the
    /// reclaimed back buffer replays a batch as O(touched) memcpys instead of
    /// re-running the mutation logic.
    fn sync_leaf_from(&mut self, other: &Self, i: usize) {
        let (bi, li) = (i / B, i % B);
        if Arc::ptr_eq(&self.root[bi][li], &other.root[bi][li]) {
            return;
        }
        let root_shared = Arc::strong_count(&self.root) > 1;
        let block_shared = root_shared || Arc::strong_count(&self.root[bi]) > 1;
        self.copies.blocks_copied += block_shared as u64;
        let root = Arc::make_mut(&mut self.root);
        let block = Arc::make_mut(&mut root[bi]);
        let leaf = &mut block[li];
        if Arc::strong_count(leaf) == 1 {
            self.copies.chunks_copied += 1;
            Arc::make_mut(leaf).clone_from(&other.root[bi][li]);
        } else {
            *leaf = Arc::clone(&other.root[bi][li]);
        }
    }
}

/// One chunk of segment paths: `SEGMENTS_PER_CHUNK` consecutive segment ids, stored
/// as a flat step buffer with per-segment bounds (a miniature CSR).
#[derive(Debug, Default)]
struct WalkChunk {
    /// `bounds[k]..bounds[k + 1]` is local segment `k`'s slice of `steps`.
    bounds: Vec<u32>,
    steps: Vec<NodeId>,
}

impl Clone for WalkChunk {
    fn clone(&self) -> Self {
        WalkChunk {
            bounds: self.bounds.clone(),
            steps: self.steps.clone(),
        }
    }

    /// Field-wise `clone_from` so the ping-pong catch-up path
    /// (`Spine::sync_leaf_from`) re-fills an existing chunk's buffers instead of
    /// reallocating them.
    fn clone_from(&mut self, source: &Self) {
        self.bounds.clone_from(&source.bounds);
        self.steps.clone_from(&source.steps);
    }
}

impl WalkChunk {
    fn new() -> Self {
        WalkChunk {
            bounds: vec![0; SEGMENTS_PER_CHUNK + 1],
            steps: Vec::new(),
        }
    }

    #[inline]
    fn path(&self, local: usize) -> &[NodeId] {
        &self.steps[self.bounds[local] as usize..self.bounds[local + 1] as usize]
    }

    /// Replaces local segment `local`'s path.  Same-length rewrites (common under
    /// steady-state rerouting) copy in place; others splice and shift the chunk's
    /// successors — O(chunk), and a chunk is only a few dozen steps.
    fn set(&mut self, local: usize, path: &[NodeId]) {
        let start = self.bounds[local] as usize;
        let end = self.bounds[local + 1] as usize;
        if path.len() == end - start {
            self.steps[start..end].copy_from_slice(path);
            return;
        }
        let delta = path.len() as i64 - (end - start) as i64;
        self.steps.splice(start..end, path.iter().copied());
        for b in &mut self.bounds[local + 1..] {
            *b = (*b as i64 + delta) as u32;
        }
    }
}

/// What one batch changed in a [`FrozenWalks`] — recorded by the mutating
/// `*_recording` methods, consumed by [`FrozenWalks::sync_touched_from`]: the walk
/// chunks to re-copy (indices may repeat; deduped at sync time) and the batch's
/// aggregated per-node visit-count deltas, replayed on the lagging twin instead of
/// memcpying whole count chunks.  Reusable: the owner clears it once per batch.
#[derive(Debug, Default, Clone)]
pub struct TouchedChunks {
    walk: Vec<u32>,
    deltas: Vec<(u32, i32)>,
    /// Scratch for collecting raw ±1 step deltas before aggregation.
    scratch: Vec<(u32, i32)>,
}

impl TouchedChunks {
    /// Empties the record for the next batch.
    pub fn clear(&mut self) {
        self.walk.clear();
        self.deltas.clear();
        self.scratch.clear();
    }
}

/// A frozen PageRank Store generation: immutable segment paths and visit counters
/// behind a two-level chunked `Spine`, implementing the [`WalkIndexView`] query
/// surface.
///
/// Cloning is O(1) (two root `Arc` bumps); advancing by a batch copies only touched
/// leaf chunks plus the spine blocks pointing at them.
#[derive(Debug, Clone)]
pub struct FrozenWalks {
    r: usize,
    node_count: usize,
    total_visits: u64,
    epoch: u64,
    chunks: Spine<WalkChunk, WALK_BLOCK>,
    counts: Spine<Vec<u64>, COUNT_BLOCK>,
}

impl FrozenWalks {
    /// Freezes a full copy of `store` as epoch `epoch`.  O(store) — done once; later
    /// generations advance incrementally through [`FrozenWalks::apply_rewrites`].
    pub fn from_index<W: WalkIndexView + ?Sized>(store: &W, epoch: u64) -> Self {
        let r = store.r();
        let node_count = store.node_count();
        let mut frozen = FrozenWalks::empty(r, node_count, epoch);
        for node in 0..node_count {
            let node = NodeId::from_index(node);
            for id in store.segment_ids_of(node) {
                frozen.set_segment(id, store.segment_path(id));
            }
        }
        debug_assert_eq!(frozen.total_visits, store.total_visits());
        frozen
    }

    /// An all-empty store of `node_count` nodes with `r` segment slots per node.
    pub fn empty(r: usize, node_count: usize, epoch: u64) -> Self {
        assert!(r >= 1, "need at least one walk segment per node");
        let mut frozen = FrozenWalks {
            r,
            node_count: 0,
            total_visits: 0,
            epoch,
            chunks: Spine::new(),
            counts: Spine::new(),
        };
        frozen.ensure_nodes(node_count);
        frozen
    }

    /// Drains the copy-on-write counters of both spines: `(segment-path spine,
    /// visit-count spine)` copies forced since the last drain.  The serving layer's
    /// commit path calls this once per published generation.
    pub fn take_copy_stats(&mut self) -> (SpineCopyStats, SpineCopyStats) {
        (self.chunks.take_copies(), self.counts.take_copies())
    }

    /// The generation number this view is pinned to.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamps the view with a new generation number (the writer does this right
    /// before publishing the advanced mirror).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Grows the view to address at least `n` nodes (new nodes start with empty
    /// segments; mirror the engine with [`FrozenWalks::sync_segments_from`]).
    pub fn ensure_nodes(&mut self, n: usize) {
        if n <= self.node_count {
            return;
        }
        self.node_count = n;
        let chunks = (n * self.r).div_ceil(SEGMENTS_PER_CHUNK);
        self.chunks.grow_with(chunks, WalkChunk::new);
        let counts = n.div_ceil(COUNTS_PER_CHUNK);
        self.counts.grow_with(counts, || vec![0; COUNTS_PER_CHUNK]);
    }

    /// Replaces one segment's path, keeping the visit counters exact.  Copy-on-write:
    /// the touched chunks are cloned only if a published generation still shares them.
    pub fn set_segment(&mut self, id: SegmentId, path: &[NodeId]) {
        let slot = id.index();
        assert!(
            slot < self.node_count * self.r,
            "segment {id:?} outside the view"
        );
        let chunk = slot / SEGMENTS_PER_CHUNK;
        let local = slot % SEGMENTS_PER_CHUNK;
        let old_len = {
            let chunk = self.chunks.get_mut(chunk);
            let old_len = chunk.path(local).len();
            // Old visits out, new visits in; both paths address nodes inside the view.
            for k in 0..old_len {
                let v = chunk.path(local)[k];
                let counts = self.counts.get_mut(v.index() / COUNTS_PER_CHUNK);
                counts[v.index() % COUNTS_PER_CHUNK] -= 1;
            }
            chunk.set(local, path);
            old_len
        };
        for &v in path {
            assert!(v.index() < self.node_count, "visit outside the view");
            let counts = self.counts.get_mut(v.index() / COUNTS_PER_CHUNK);
            counts[v.index() % COUNTS_PER_CHUNK] += 1;
        }
        self.total_visits = self.total_visits - old_len as u64 + path.len() as u64;
    }

    /// Advances the view by one reconciled rewrite plan — exactly the plan the engine
    /// applied to the live store, in plan order.
    ///
    /// Visit-count maintenance is batched: the per-step deltas of every rewrite in
    /// the plan are buffered, grouped by count chunk, and applied with one
    /// `Spine::get_mut` per touched chunk — instead of one per step, which under
    /// per-edge commits is most of the mirror-advance cost.
    pub fn apply_rewrites(&mut self, rewrites: &SegmentRewrites) {
        let mut touched = TouchedChunks::default();
        self.apply_rewrites_recording(rewrites, &mut touched);
    }

    /// [`FrozenWalks::apply_rewrites`] that additionally records every touched leaf
    /// chunk into `touched`, so a lagging twin of this view can catch up with
    /// [`FrozenWalks::sync_touched_from`] instead of replaying the plan.
    pub fn apply_rewrites_recording(
        &mut self,
        rewrites: &SegmentRewrites,
        touched: &mut TouchedChunks,
    ) {
        let mut deltas = std::mem::take(&mut touched.scratch);
        deltas.clear();
        for (id, path) in rewrites.iter() {
            let slot = id.index();
            assert!(
                slot < self.node_count * self.r,
                "segment {id:?} outside the view"
            );
            let chunk_index = slot / SEGMENTS_PER_CHUNK;
            touched.walk.push(chunk_index as u32);
            let chunk = self.chunks.get_mut(chunk_index);
            let local = slot % SEGMENTS_PER_CHUNK;
            let old = chunk.path(local);
            let old_len = old.len();
            for &v in old {
                deltas.push((v.index() as u32, -1));
            }
            for &v in path {
                assert!(v.index() < self.node_count, "visit outside the view");
                deltas.push((v.index() as u32, 1));
            }
            chunk.set(local, path);
            self.total_visits = self.total_visits - old_len as u64 + path.len() as u64;
        }
        self.apply_count_deltas(&mut deltas, touched);
        touched.scratch = deltas;
    }

    /// Applies buffered `(node, ±1)` visit deltas, grouped so each touched count
    /// chunk is resolved (and, if shared, copied) exactly once.  Each node's nonzero
    /// net delta is also recorded into `touched` for the catch-up replay.
    fn apply_count_deltas(&mut self, deltas: &mut [(u32, i32)], touched: &mut TouchedChunks) {
        deltas.sort_unstable_by_key(|&(node, _)| node);
        let mut i = 0;
        while i < deltas.len() {
            let chunk_index = deltas[i].0 as usize / COUNTS_PER_CHUNK;
            let chunk = self.counts.get_mut(chunk_index);
            while i < deltas.len() && deltas[i].0 as usize / COUNTS_PER_CHUNK == chunk_index {
                let (node, mut net) = deltas[i];
                i += 1;
                while i < deltas.len() && deltas[i].0 == node {
                    net += deltas[i].1;
                    i += 1;
                }
                if net != 0 {
                    touched.deltas.push((node, net));
                    let count = &mut chunk[node as usize % COUNTS_PER_CHUNK];
                    *count = (*count as i64 + net as i64) as u64;
                }
            }
        }
    }

    /// [`FrozenWalks::set_segment`] that records the walk chunk it touches and its
    /// visit-count deltas (the growth companion of
    /// [`FrozenWalks::apply_rewrites_recording`]).
    pub fn set_segment_recording(
        &mut self,
        id: SegmentId,
        path: &[NodeId],
        touched: &mut TouchedChunks,
    ) {
        let slot = id.index();
        assert!(
            slot < self.node_count * self.r,
            "segment {id:?} outside the view"
        );
        let chunk_index = slot / SEGMENTS_PER_CHUNK;
        touched.walk.push(chunk_index as u32);
        let mut deltas = std::mem::take(&mut touched.scratch);
        deltas.clear();
        let old_len = {
            let chunk = self.chunks.get_mut(chunk_index);
            let local = slot % SEGMENTS_PER_CHUNK;
            let old = chunk.path(local);
            for &v in old {
                deltas.push((v.index() as u32, -1));
            }
            let old_len = old.len();
            chunk.set(local, path);
            old_len
        };
        for &v in path {
            assert!(v.index() < self.node_count, "visit outside the view");
            deltas.push((v.index() as u32, 1));
        }
        self.total_visits = self.total_visits - old_len as u64 + path.len() as u64;
        self.apply_count_deltas(&mut deltas, touched);
        touched.scratch = deltas;
    }

    /// Catches this view up to `front` — its twin advanced by exactly one batch whose
    /// changes are in `touched` — without re-running the batch's mutation logic: an
    /// O(touched) pass re-copying the touched walk chunks (allocation-free when this
    /// view's chunks are unique) and replaying the batch's aggregated visit-count
    /// deltas in place.  This is the committer's generation ping-pong catch-up half;
    /// both views must descend from the same lineage (this one exactly one batch
    /// behind) so untouched chunks are already structurally shared.
    pub fn sync_touched_from(&mut self, front: &FrozenWalks, touched: &mut TouchedChunks) {
        debug_assert_eq!(self.r, front.r, "ping-pong twins must agree on r");
        self.ensure_nodes(front.node_count);
        touched.walk.sort_unstable();
        touched.walk.dedup();
        for &i in &touched.walk {
            self.chunks.sync_leaf_from(&front.chunks, i as usize);
        }
        for &(node, net) in &touched.deltas {
            let chunk = self.counts.get_mut(node as usize / COUNTS_PER_CHUNK);
            let count = &mut chunk[node as usize % COUNTS_PER_CHUNK];
            *count = (*count as i64 + net as i64) as u64;
        }
        self.total_visits = front.total_visits;
        self.epoch = front.epoch;
    }

    /// Copies the segments of nodes `from..to` out of a live store — the node-growth
    /// companion of [`FrozenWalks::apply_rewrites`]: segments generated for brand-new
    /// nodes never appear in a rewrite plan.
    pub fn sync_segments_from<W: WalkIndexView + ?Sized>(
        &mut self,
        store: &W,
        from: usize,
        to: usize,
    ) {
        self.ensure_nodes(to);
        for node in from..to {
            let node = NodeId::from_index(node);
            for id in store.segment_ids_of(node) {
                self.set_segment(id, store.segment_path(id));
            }
        }
    }
}

impl WalkIndexView for FrozenWalks {
    #[inline]
    fn r(&self) -> usize {
        self.r
    }

    #[inline]
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn segment_path(&self, id: SegmentId) -> &[NodeId] {
        let slot = id.index();
        self.chunks
            .get(slot / SEGMENTS_PER_CHUNK)
            .path(slot % SEGMENTS_PER_CHUNK)
    }

    #[inline]
    fn source_of(&self, id: SegmentId) -> NodeId {
        id.source(self.r)
    }

    fn segment_ids_of(&self, node: NodeId) -> impl Iterator<Item = SegmentId> + '_ {
        let r = self.r;
        (0..r).map(move |slot| SegmentId::new(node, slot, r))
    }

    #[inline]
    fn visit_count(&self, node: NodeId) -> u64 {
        self.counts.get(node.index() / COUNTS_PER_CHUNK)[node.index() % COUNTS_PER_CHUNK]
    }

    fn visit_counts(&self) -> std::borrow::Cow<'_, [u64]> {
        let mut out = Vec::with_capacity(self.node_count);
        for chunk in self.counts.iter() {
            let take = (self.node_count - out.len()).min(COUNTS_PER_CHUNK);
            out.extend_from_slice(&chunk[..take]);
        }
        std::borrow::Cow::Owned(out)
    }

    #[inline]
    fn total_visits(&self) -> u64 {
        self.total_visits
    }
}

/// One chunk of frozen adjacency: the neighbour lists (one direction) of
/// [`NODES_PER_GRAPH_CHUNK`] consecutive nodes, each list its own `Arc`d vector.
/// Copying a chunk bumps [`NODES_PER_GRAPH_CHUNK`] refcounts — never list payloads,
/// so a chunk full of hub lists costs the same as a chunk of leaves.  Lists mutate
/// through `Arc::make_mut`: once a buffer owns its list uniquely (one copy after a
/// publish pinned it), appending an edge is an amortised O(1) push — never an
/// O(degree) re-snapshot of a hub's list.
#[derive(Debug, Clone)]
struct AdjChunk {
    lists: Vec<Arc<Vec<NodeId>>>,
}

impl AdjChunk {
    fn new(empty: &Arc<Vec<NodeId>>) -> Self {
        AdjChunk {
            lists: vec![Arc::clone(empty); NODES_PER_GRAPH_CHUNK],
        }
    }

    #[inline]
    fn list(&self, local: usize) -> &[NodeId] {
        &self.lists[local]
    }
}

/// A frozen Social-Store adjacency generation: the exact out- and in-neighbour lists
/// (order included — sampling picks by position) behind two chunked spines, one per
/// direction — an edge commit touches its source's out-chunk and its target's
/// in-chunk, never the other direction of either endpoint.
///
/// Cloning is cheap; [`FrozenGraph::refresh_nodes`] advances it by one batch, copying
/// only the chunks holding endpoints the batch touched.
#[derive(Debug, Clone)]
pub struct FrozenGraph {
    node_count: usize,
    edge_count: usize,
    out: Spine<AdjChunk, GRAPH_BLOCK>,
    incoming: Spine<AdjChunk, GRAPH_BLOCK>,
    /// The shared empty list isolated nodes point at.
    empty: Arc<Vec<NodeId>>,
}

impl FrozenGraph {
    /// An empty zero-node view — the cheap placeholder the committer swaps in while
    /// its real buffers move into a published generation.
    pub fn empty() -> Self {
        FrozenGraph {
            node_count: 0,
            edge_count: 0,
            out: Spine::new(),
            incoming: Spine::new(),
            empty: Arc::new(Vec::new()),
        }
    }

    /// Freezes a full copy of `graph`.  O(graph) — done once per serving session.
    pub fn from_graph<G: GraphView + ?Sized>(graph: &G) -> Self {
        let mut frozen = FrozenGraph::empty();
        frozen.ensure_nodes(graph.node_count());
        frozen.refresh_nodes(graph, graph.nodes());
        frozen
    }

    /// Grows the view to address at least `n` nodes (new nodes start isolated).
    pub fn ensure_nodes(&mut self, n: usize) {
        if n <= self.node_count {
            return;
        }
        self.node_count = n;
        let chunks = n.div_ceil(NODES_PER_GRAPH_CHUNK);
        let empty = Arc::clone(&self.empty);
        self.out.grow_with(chunks, || AdjChunk::new(&empty));
        let empty = Arc::clone(&self.empty);
        self.incoming.grow_with(chunks, || AdjChunk::new(&empty));
    }

    /// Drains both adjacency spines' copy-on-write counters (see
    /// [`FrozenWalks::take_copy_stats`]).
    pub fn take_copy_stats(&mut self) -> SpineCopyStats {
        self.out.take_copies().merge(self.incoming.take_copies())
    }

    /// Re-copies the adjacency lists of `nodes` out of `graph` (which must already
    /// reflect the batch), keeping `edge_count` in sync with the source graph.  The
    /// writer calls this with the distinct endpoints of each committed batch.
    pub fn refresh_nodes<G: GraphView + ?Sized>(
        &mut self,
        graph: &G,
        nodes: impl IntoIterator<Item = NodeId>,
    ) {
        self.ensure_nodes(graph.node_count());
        for node in nodes {
            self.refresh_out(graph, node);
            self.refresh_in(graph, node);
        }
        self.edge_count = graph.edge_count();
    }

    /// Direction-split refresh for edge batches: an edge only changes its source's
    /// out-list and its target's in-list, so the writer refreshes exactly those —
    /// half the work of refreshing both directions of every endpoint.  Both node
    /// sets must come from the post-batch `graph`.
    pub fn refresh_endpoints<G: GraphView + ?Sized>(
        &mut self,
        graph: &G,
        sources: impl IntoIterator<Item = NodeId>,
        targets: impl IntoIterator<Item = NodeId>,
    ) {
        self.ensure_nodes(graph.node_count());
        for node in sources {
            self.refresh_out(graph, node);
        }
        for node in targets {
            self.refresh_in(graph, node);
        }
        self.edge_count = graph.edge_count();
    }

    fn refresh_out<G: GraphView + ?Sized>(&mut self, graph: &G, node: NodeId) {
        self.set_out_list(node, Arc::new(graph.out_neighbors(node).to_vec()));
    }

    fn refresh_in<G: GraphView + ?Sized>(&mut self, graph: &G, node: NodeId) {
        self.set_in_list(node, Arc::new(graph.in_neighbors(node).to_vec()));
    }

    /// Replaces one node's out-list with an already-materialised shared list in one
    /// pointer swap.  Empty lists collapse onto the shared empty list.
    pub fn set_out_list(&mut self, node: NodeId, list: Arc<Vec<NodeId>>) {
        let list = if list.is_empty() {
            Arc::clone(&self.empty)
        } else {
            list
        };
        let chunk = self.out.get_mut(node.index() / NODES_PER_GRAPH_CHUNK);
        chunk.lists[node.index() % NODES_PER_GRAPH_CHUNK] = list;
    }

    /// The in-list counterpart of [`FrozenGraph::set_out_list`].
    pub fn set_in_list(&mut self, node: NodeId, list: Arc<Vec<NodeId>>) {
        let list = if list.is_empty() {
            Arc::clone(&self.empty)
        } else {
            list
        };
        let chunk = self.incoming.get_mut(node.index() / NODES_PER_GRAPH_CHUNK);
        chunk.lists[node.index() % NODES_PER_GRAPH_CHUNK] = list;
    }

    /// Replays one edge arrival — bit-exactly `DynamicGraph::add_edge`: the target
    /// is appended to the source's out-list and the source to the target's in-list,
    /// preserving list order (sampling picks by position).  Amortised O(1): the
    /// committer's entry point, replacing the old post-batch endpoint re-snapshot
    /// that cost O(degree) per touched hub.
    pub fn add_edge(&mut self, edge: Edge) {
        debug_assert!(
            edge.source.index() < self.node_count && edge.target.index() < self.node_count,
            "edge {edge} outside the view; ensure_nodes first"
        );
        let chunk = self
            .out
            .get_mut(edge.source.index() / NODES_PER_GRAPH_CHUNK);
        Arc::make_mut(&mut chunk.lists[edge.source.index() % NODES_PER_GRAPH_CHUNK])
            .push(edge.target);
        let chunk = self
            .incoming
            .get_mut(edge.target.index() / NODES_PER_GRAPH_CHUNK);
        Arc::make_mut(&mut chunk.lists[edge.target.index() % NODES_PER_GRAPH_CHUNK])
            .push(edge.source);
        self.edge_count += 1;
    }

    /// Replays one edge deletion — bit-exactly `DynamicGraph::remove_edge`
    /// (first-occurrence `swap_remove` in both directions), returning whether the
    /// edge was present.  Absent edges leave the view untouched.
    pub fn remove_edge(&mut self, edge: Edge) -> bool {
        if edge.source.index() >= self.node_count || edge.target.index() >= self.node_count {
            return false;
        }
        let Some(pos) = self
            .out_neighbors(edge.source)
            .iter()
            .position(|&t| t == edge.target)
        else {
            return false;
        };
        let chunk = self
            .out
            .get_mut(edge.source.index() / NODES_PER_GRAPH_CHUNK);
        Arc::make_mut(&mut chunk.lists[edge.source.index() % NODES_PER_GRAPH_CHUNK])
            .swap_remove(pos);
        let pos = self
            .in_neighbors(edge.target)
            .iter()
            .position(|&s| s == edge.source)
            .expect("out/in adjacency lists out of sync");
        let chunk = self
            .incoming
            .get_mut(edge.target.index() / NODES_PER_GRAPH_CHUNK);
        Arc::make_mut(&mut chunk.lists[edge.target.index() % NODES_PER_GRAPH_CHUNK])
            .swap_remove(pos);
        self.edge_count -= 1;
        true
    }

    /// Stamps the view's edge count (the committer sets it to the post-batch value
    /// the writer recorded; the `refresh_*` paths read it off the live graph).
    pub fn set_edge_count(&mut self, edges: usize) {
        self.edge_count = edges;
    }

    /// The node's out-adjacency as a shared list (what a fetch materialises).
    pub fn shared_out_neighbors(&self, node: NodeId) -> Arc<Vec<NodeId>> {
        Arc::clone(
            &self.out.get(node.index() / NODES_PER_GRAPH_CHUNK).lists
                [node.index() % NODES_PER_GRAPH_CHUNK],
        )
    }
}

impl GraphView for FrozenGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_count
    }

    #[inline]
    fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        self.out
            .get(node.index() / NODES_PER_GRAPH_CHUNK)
            .list(node.index() % NODES_PER_GRAPH_CHUNK)
    }

    #[inline]
    fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        self.incoming
            .get(node.index() / NODES_PER_GRAPH_CHUNK)
            .list(node.index() % NODES_PER_GRAPH_CHUNK)
    }
}

/// The paper's data-access model for personalized queries: one *fetch* brings a
/// node's full out-adjacency into the walker's memory.  The walker is generic over
/// this trait, so the same query runs against the live [`crate::SocialStore`] (with
/// its fetch metrics), a pinned [`FrozenGraph`] generation, or a caching wrapper.
pub trait AdjacencyFetch {
    /// Number of nodes the store addresses.
    fn node_count(&self) -> usize;

    /// One fetch: copies `node`'s out-adjacency into `out` (cleared first).
    fn fetch_out(&self, node: NodeId, out: &mut Vec<NodeId>);
}

impl AdjacencyFetch for FrozenGraph {
    fn node_count(&self) -> usize {
        GraphView::node_count(self)
    }

    fn fetch_out(&self, node: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(self.out_neighbors(node));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walks::WalkStore;
    use ppr_graph::{DynamicGraph, Edge};

    fn path(nodes: &[u32]) -> Vec<NodeId> {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    fn assert_views_equal<W: WalkIndexView>(frozen: &FrozenWalks, store: &W, context: &str) {
        assert_eq!(frozen.node_count(), store.node_count(), "{context}: nodes");
        assert_eq!(frozen.r(), store.r(), "{context}: r");
        assert_eq!(
            frozen.total_visits(),
            store.total_visits(),
            "{context}: total_visits"
        );
        assert_eq!(
            frozen.visit_counts(),
            store.visit_counts(),
            "{context}: visit counts"
        );
        for g in 0..store.node_count() {
            let node = NodeId::from_index(g);
            assert_eq!(frozen.visit_count(node), store.visit_count(node));
            for id in store.segment_ids_of(node) {
                assert_eq!(
                    frozen.segment_path(id),
                    store.segment_path(id),
                    "{context}: segment {id:?}"
                );
            }
        }
    }

    #[test]
    fn freeze_reproduces_the_store_exactly() {
        let mut store = WalkStore::new(150, 3);
        for n in 0..150u32 {
            let id = SegmentId::new(NodeId(n), (n as usize) % 3, 3);
            store.set_segment(id, &path(&[n, (n + 7) % 150, (n + 1) % 150]));
        }
        let frozen = FrozenWalks::from_index(&store, 9);
        assert_eq!(frozen.epoch(), 9);
        assert_views_equal(&frozen, &store, "full freeze");
    }

    #[test]
    fn apply_rewrites_advances_the_view_like_the_store() {
        let mut store = WalkStore::new(200, 2);
        let mut frozen = FrozenWalks::from_index(&store, 0);
        for round in 0..5u32 {
            let mut plan = SegmentRewrites::new();
            for k in 0..40u32 {
                let node = (round * 37 + k * 11) % 200;
                let id = SegmentId::new(NodeId(node), (k as usize) % 2, 2);
                let p = path(&[node, (node + round + 1) % 200, (node + 2 * k) % 200]);
                plan.push(id, &p);
            }
            for (id, p) in plan.iter() {
                store.set_segment(id, p);
            }
            frozen.apply_rewrites(&plan);
            frozen.set_epoch(round as u64 + 1);
            assert_views_equal(&frozen, &store, &format!("round {round}"));
        }
    }

    #[test]
    fn cow_keeps_pinned_clones_unchanged() {
        let mut store = WalkStore::new(64, 1);
        let id = SegmentId::new(NodeId(5), 0, 1);
        store.set_segment(id, &path(&[5, 6, 7]));
        let mut mirror = FrozenWalks::from_index(&store, 0);
        let pinned = mirror.clone(); // a published generation readers still hold

        let mut plan = SegmentRewrites::new();
        plan.push(id, &path(&[5, 8]));
        mirror.apply_rewrites(&plan);
        mirror.set_epoch(1);

        assert_eq!(pinned.segment_path(id), path(&[5, 6, 7]).as_slice());
        assert_eq!(pinned.visit_count(NodeId(7)), 1);
        assert_eq!(pinned.total_visits(), 3);
        assert_eq!(mirror.segment_path(id), path(&[5, 8]).as_slice());
        assert_eq!(mirror.visit_count(NodeId(7)), 0);
        assert_eq!(mirror.total_visits(), 2);
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(mirror.epoch(), 1);
    }

    #[test]
    fn node_growth_syncs_new_segments() {
        let mut store = WalkStore::new(4, 2);
        store.set_segment(SegmentId::new(NodeId(1), 0, 2), &path(&[1, 2]));
        let mut frozen = FrozenWalks::from_index(&store, 0);
        store.ensure_nodes(70); // crosses a chunk boundary
        store.set_segment(SegmentId::new(NodeId(69), 1, 2), &path(&[69, 1]));
        frozen.sync_segments_from(&store, 4, 70);
        assert_views_equal(&frozen, &store, "after growth");
    }

    #[test]
    fn frozen_graph_mirrors_adjacency_and_cow_isolates_pins() {
        let mut graph = DynamicGraph::with_nodes(130);
        for i in 0..129u32 {
            graph.add_edge(Edge::new(i, i + 1));
        }
        let mut frozen = FrozenGraph::from_graph(&graph);
        assert_eq!(GraphView::node_count(&frozen), 130);
        assert_eq!(frozen.edge_count(), 129);
        assert_eq!(frozen.out_neighbors(NodeId(3)), &[NodeId(4)]);
        assert_eq!(frozen.in_neighbors(NodeId(4)), &[NodeId(3)]);

        let pinned = frozen.clone();
        graph.add_edge(Edge::new(3, 100));
        graph.remove_edge(Edge::new(64, 65));
        frozen.refresh_nodes(&graph, [NodeId(3), NodeId(100), NodeId(64), NodeId(65)]);
        assert_eq!(frozen.out_neighbors(NodeId(3)), &[NodeId(4), NodeId(100)]);
        assert_eq!(frozen.out_neighbors(NodeId(64)), &[] as &[NodeId]);
        assert_eq!(frozen.edge_count(), 129);
        // The pinned clone still sees the pre-batch lists.
        assert_eq!(pinned.out_neighbors(NodeId(3)), &[NodeId(4)]);
        assert_eq!(pinned.out_neighbors(NodeId(64)), &[NodeId(65)]);

        let mut buf = Vec::new();
        frozen.fetch_out(NodeId(3), &mut buf);
        assert_eq!(buf, path(&[4, 100]));
    }

    #[test]
    fn store_snapshot_view_wrappers_freeze_identically() {
        // The per-layout convenience wrappers are the discoverable entry point the
        // serving docs name; they must be exactly FrozenWalks::from_index.
        let mut flat = WalkStore::new(9, 2);
        flat.set_segment(SegmentId::new(NodeId(1), 0, 2), &path(&[1, 4, 7]));
        let view = flat.snapshot_view(3);
        assert_eq!(view.epoch(), 3);
        assert_views_equal(&view, &flat, "flat snapshot_view");

        let mut sharded = crate::ShardedWalkStore::new(9, 2, 3);
        crate::WalkIndexMut::set_segment(
            &mut sharded,
            SegmentId::new(NodeId(1), 0, 2),
            &path(&[1, 4, 7]),
        );
        let view = sharded.snapshot_view(4);
        assert_eq!(view.epoch(), 4);
        assert_views_equal(&view, &sharded, "sharded snapshot_view");
    }

    #[test]
    fn spine_clone_shares_everything_and_mutation_copies_one_path() {
        // 300 leaves → 5 blocks of 64.  After a clone, touching one leaf must copy
        // exactly that leaf, its block, and the root — nothing else.
        let mut spine: Spine<u64, 64> = Spine::new();
        spine.grow_with(300, || 0);
        assert_eq!(spine.len, 300);
        spine.take_copies();

        let pinned = spine.clone();
        *spine.get_mut(130) = 7;
        let copies = spine.take_copies();
        assert_eq!(copies.chunks_copied, 1, "one leaf copied");
        assert_eq!(copies.blocks_copied, 1, "one block copied");
        assert_eq!(*pinned.get(130), 0, "the pinned clone is unchanged");
        assert_eq!(*spine.get(130), 7);

        // A second touch in the same block copies nothing further…
        *spine.get_mut(131) = 8;
        let copies = spine.take_copies();
        assert_eq!(
            copies.chunks_copied, 1,
            "leaf 131 still shared with the pin"
        );
        assert_eq!(copies.blocks_copied, 0, "block 2 is already unshared");
        // …and re-touching an already-copied leaf is free.
        *spine.get_mut(130) = 9;
        assert_eq!(spine.take_copies(), SpineCopyStats::default());
    }

    #[test]
    fn spine_growth_preserves_contents_across_partial_blocks() {
        let mut spine: Spine<usize, 64> = Spine::new();
        spine.grow_with(10, || 1);
        for i in 0..10 {
            *spine.get_mut(i) = i;
        }
        spine.grow_with(200, || 99);
        assert_eq!(spine.len, 200);
        for i in 0..10 {
            assert_eq!(*spine.get(i), i, "pre-growth leaves survive");
        }
        assert_eq!(*spine.get(10), 99);
        assert_eq!(*spine.get(199), 99);
        assert_eq!(spine.iter().count(), 200);
    }

    #[test]
    fn one_segment_rewrite_copies_o1_chunks_after_publish() {
        // A store big enough for many blocks: 3000 nodes × 2 slots = 6000 segments =
        // 188 walk chunks ≈ 3 blocks.  One rewrite after a publish (clone) must copy
        // O(1) leaves, not O(store).
        let mut store = WalkStore::new(3000, 2);
        for n in 0..3000u32 {
            let id = SegmentId::new(NodeId(n), 0, 2);
            store.set_segment(id, &path(&[n, (n + 1) % 3000]));
        }
        let mut mirror = FrozenWalks::from_index(&store, 0);
        mirror.take_copy_stats();
        let _pinned = mirror.clone();

        let mut plan = SegmentRewrites::new();
        plan.push(SegmentId::new(NodeId(5), 0, 2), &path(&[5, 9]));
        mirror.apply_rewrites(&plan);
        let (walk, counts) = mirror.take_copy_stats();
        assert_eq!(walk.chunks_copied, 1);
        assert_eq!(walk.blocks_copied, 1);
        assert!(counts.chunks_copied <= 2, "old + new visit count chunks");
    }

    #[test]
    fn graph_setters_match_refresh_and_collapse_empty_lists() {
        let mut graph = DynamicGraph::with_nodes(70);
        graph.add_edge(Edge::new(1, 2));
        let mut via_refresh = FrozenGraph::from_graph(&graph);
        let mut via_setters = via_refresh.clone();

        graph.add_edge(Edge::new(1, 69));
        graph.remove_edge(Edge::new(1, 2));
        via_refresh.refresh_endpoints(&graph, [NodeId(1)], [NodeId(2), NodeId(69)]);

        via_setters.set_out_list(NodeId(1), Arc::new(graph.out_neighbors(NodeId(1)).to_vec()));
        via_setters.set_in_list(NodeId(2), Arc::new(graph.in_neighbors(NodeId(2)).to_vec()));
        via_setters.set_in_list(
            NodeId(69),
            Arc::new(graph.in_neighbors(NodeId(69)).to_vec()),
        );
        via_setters.set_edge_count(graph.edge_count());

        for n in 0..70u32 {
            assert_eq!(
                via_setters.out_neighbors(NodeId(n)),
                via_refresh.out_neighbors(NodeId(n))
            );
            assert_eq!(
                via_setters.in_neighbors(NodeId(n)),
                via_refresh.in_neighbors(NodeId(n))
            );
        }
        assert_eq!(via_setters.edge_count(), via_refresh.edge_count());
        // The emptied in-list collapsed onto the shared empty slice.
        assert!(via_setters.in_neighbors(NodeId(2)).is_empty());
    }

    #[test]
    fn edge_replay_matches_live_graph_order_bit_exactly() {
        // The committer mirrors the live graph by replaying the same edge batch in
        // the same order; sampling picks neighbours by list position, so the lists
        // must match element-for-element — including swap_remove reordering and
        // duplicate (multi-)edges.
        let mut graph = DynamicGraph::with_nodes(8);
        let mut mirror = FrozenGraph::from_graph(&graph);
        let _pinned = mirror.clone(); // force COW on every replayed list

        let batch = [
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(0, 2), // duplicate edge — both copies must survive
            Edge::new(5, 0),
            Edge::new(6, 0),
        ];
        for &e in &batch {
            graph.add_edge(e);
            mirror.add_edge(e);
        }
        // swap_remove moves the tail into slot 0 — order change must be replayed.
        let deletions = [Edge::new(0, 1), Edge::new(4, 7), Edge::new(0, 2)];
        for &e in &deletions {
            assert_eq!(mirror.remove_edge(e), graph.remove_edge(e));
        }

        for n in 0..8u32 {
            assert_eq!(
                mirror.out_neighbors(NodeId(n)),
                graph.out_neighbors(NodeId(n))
            );
            assert_eq!(
                mirror.in_neighbors(NodeId(n)),
                graph.in_neighbors(NodeId(n))
            );
        }
        assert_eq!(mirror.edge_count(), graph.edge_count());
    }

    #[test]
    fn frozen_graph_growth_starts_isolated() {
        let graph = DynamicGraph::with_nodes(2);
        let mut frozen = FrozenGraph::from_graph(&graph);
        frozen.ensure_nodes(100);
        assert_eq!(GraphView::node_count(&frozen), 100);
        assert!(frozen.out_neighbors(NodeId(99)).is_empty());
    }
}
