//! Epoch-pinned snapshot views: the read-side half of snapshot-isolated serving.
//!
//! The live stores mutate in place — an in-place arena rewrite is exactly what makes
//! maintenance fast — so a reader on another thread can never safely look at them
//! while a batch applies.  This module provides the immutable counterpart:
//!
//! * [`FrozenWalks`] — a frozen PageRank Store generation implementing the full
//!   [`WalkIndexView`] query surface.  Storage is **chunked copy-on-write**: segment
//!   paths live in fixed-size chunks behind `Arc`s, so cloning a generation is one
//!   spine copy (a few hundred pointers), and advancing it by a batch
//!   ([`FrozenWalks::apply_rewrites`]) clones only the chunks the batch touched while
//!   every untouched chunk stays shared with the published generations readers still
//!   pin.
//! * [`FrozenGraph`] — the matching frozen Social-Store adjacency (out- and
//!   in-neighbours, chunked the same way), implementing [`ppr_graph::GraphView`], so
//!   walks and SALSA queries run against it unchanged.
//! * [`AdjacencyFetch`] — the data-access model of the paper's personalized walker
//!   (Algorithm 1): one *fetch* returns a node's full out-adjacency.  Implemented by
//!   the live [`crate::SocialStore`] (with fetch accounting) and by [`FrozenGraph`],
//!   so the walker serves from a live store or from a pinned generation with the same
//!   code — and, crucially, the same RNG stream, which is what makes a concurrently
//!   served query bit-identical to its single-threaded replay.
//!
//! The writer keeps one mutable [`FrozenWalks`]/[`FrozenGraph`] *mirror*, advances it
//! after every batch from the engine's own reconciled rewrite plan, and publishes a
//! clone as the next generation (see `ppr-serve`).  Readers pin a generation by
//! cloning one `Arc` and then proceed without any further synchronisation: every
//! chunk they can reach is immutable.

use crate::index::WalkIndexView;
use crate::segment::SegmentId;
use crate::SegmentRewrites;
use ppr_graph::{GraphView, NodeId};
use std::sync::Arc;

/// Segments per copy-on-write walk chunk.  Small enough that a batch rewriting a few
/// hundred segments copies a few hundred small chunks (and the per-rewrite splice
/// shifts little), large enough that the spine (one `Arc` per chunk) stays tiny
/// relative to the data.
pub const SEGMENTS_PER_CHUNK: usize = 32;

/// Nodes per copy-on-write visit-count chunk.
pub const COUNTS_PER_CHUNK: usize = 512;

/// Nodes per copy-on-write adjacency chunk.
pub const NODES_PER_GRAPH_CHUNK: usize = 64;

/// One chunk of segment paths: `SEGMENTS_PER_CHUNK` consecutive segment ids, stored
/// as a flat step buffer with per-segment bounds (a miniature CSR).
#[derive(Debug, Clone, Default)]
struct WalkChunk {
    /// `bounds[k]..bounds[k + 1]` is local segment `k`'s slice of `steps`.
    bounds: Vec<u32>,
    steps: Vec<NodeId>,
}

impl WalkChunk {
    fn new() -> Self {
        WalkChunk {
            bounds: vec![0; SEGMENTS_PER_CHUNK + 1],
            steps: Vec::new(),
        }
    }

    #[inline]
    fn path(&self, local: usize) -> &[NodeId] {
        &self.steps[self.bounds[local] as usize..self.bounds[local + 1] as usize]
    }

    /// Replaces local segment `local`'s path.  Same-length rewrites (common under
    /// steady-state rerouting) copy in place; others splice and shift the chunk's
    /// successors — O(chunk), and a chunk is only a few dozen steps.
    fn set(&mut self, local: usize, path: &[NodeId]) {
        let start = self.bounds[local] as usize;
        let end = self.bounds[local + 1] as usize;
        if path.len() == end - start {
            self.steps[start..end].copy_from_slice(path);
            return;
        }
        let delta = path.len() as i64 - (end - start) as i64;
        self.steps.splice(start..end, path.iter().copied());
        for b in &mut self.bounds[local + 1..] {
            *b = (*b as i64 + delta) as u32;
        }
    }
}

/// A frozen PageRank Store generation: immutable segment paths and visit counters
/// behind chunked `Arc`s, implementing the [`WalkIndexView`] query surface.
///
/// Cloning is cheap (spine-only); advancing by a batch copies only touched chunks.
#[derive(Debug, Clone)]
pub struct FrozenWalks {
    r: usize,
    node_count: usize,
    total_visits: u64,
    epoch: u64,
    chunks: Vec<Arc<WalkChunk>>,
    counts: Vec<Arc<Vec<u64>>>,
}

impl FrozenWalks {
    /// Freezes a full copy of `store` as epoch `epoch`.  O(store) — done once; later
    /// generations advance incrementally through [`FrozenWalks::apply_rewrites`].
    pub fn from_index<W: WalkIndexView + ?Sized>(store: &W, epoch: u64) -> Self {
        let r = store.r();
        let node_count = store.node_count();
        let mut frozen = FrozenWalks::empty(r, node_count, epoch);
        for node in 0..node_count {
            let node = NodeId::from_index(node);
            for id in store.segment_ids_of(node) {
                frozen.set_segment(id, store.segment_path(id));
            }
        }
        debug_assert_eq!(frozen.total_visits, store.total_visits());
        frozen
    }

    /// An all-empty store of `node_count` nodes with `r` segment slots per node.
    pub fn empty(r: usize, node_count: usize, epoch: u64) -> Self {
        assert!(r >= 1, "need at least one walk segment per node");
        let mut frozen = FrozenWalks {
            r,
            node_count: 0,
            total_visits: 0,
            epoch,
            chunks: Vec::new(),
            counts: Vec::new(),
        };
        frozen.ensure_nodes(node_count);
        frozen
    }

    /// The generation number this view is pinned to.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamps the view with a new generation number (the writer does this right
    /// before publishing the advanced mirror).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Grows the view to address at least `n` nodes (new nodes start with empty
    /// segments; mirror the engine with [`FrozenWalks::sync_segments_from`]).
    pub fn ensure_nodes(&mut self, n: usize) {
        if n <= self.node_count {
            return;
        }
        self.node_count = n;
        let chunks = (n * self.r).div_ceil(SEGMENTS_PER_CHUNK);
        self.chunks
            .resize_with(chunks, || Arc::new(WalkChunk::new()));
        let counts = n.div_ceil(COUNTS_PER_CHUNK);
        self.counts
            .resize_with(counts, || Arc::new(vec![0; COUNTS_PER_CHUNK]));
    }

    /// Replaces one segment's path, keeping the visit counters exact.  Copy-on-write:
    /// the touched chunks are cloned only if a published generation still shares them.
    pub fn set_segment(&mut self, id: SegmentId, path: &[NodeId]) {
        let slot = id.index();
        assert!(
            slot < self.node_count * self.r,
            "segment {id:?} outside the view"
        );
        let chunk = slot / SEGMENTS_PER_CHUNK;
        let local = slot % SEGMENTS_PER_CHUNK;
        let old_len = {
            let chunk = Arc::make_mut(&mut self.chunks[chunk]);
            let old_len = chunk.path(local).len();
            // Old visits out, new visits in; both paths address nodes inside the view.
            for k in 0..old_len {
                let v = chunk.path(local)[k];
                let counts = Arc::make_mut(&mut self.counts[v.index() / COUNTS_PER_CHUNK]);
                counts[v.index() % COUNTS_PER_CHUNK] -= 1;
            }
            chunk.set(local, path);
            old_len
        };
        for &v in path {
            assert!(v.index() < self.node_count, "visit outside the view");
            let counts = Arc::make_mut(&mut self.counts[v.index() / COUNTS_PER_CHUNK]);
            counts[v.index() % COUNTS_PER_CHUNK] += 1;
        }
        self.total_visits = self.total_visits - old_len as u64 + path.len() as u64;
    }

    /// Advances the view by one reconciled rewrite plan — exactly the plan the engine
    /// applied to the live store, in plan order.
    pub fn apply_rewrites(&mut self, rewrites: &SegmentRewrites) {
        for (id, path) in rewrites.iter() {
            self.set_segment(id, path);
        }
    }

    /// Copies the segments of nodes `from..to` out of a live store — the node-growth
    /// companion of [`FrozenWalks::apply_rewrites`]: segments generated for brand-new
    /// nodes never appear in a rewrite plan.
    pub fn sync_segments_from<W: WalkIndexView + ?Sized>(
        &mut self,
        store: &W,
        from: usize,
        to: usize,
    ) {
        self.ensure_nodes(to);
        for node in from..to {
            let node = NodeId::from_index(node);
            for id in store.segment_ids_of(node) {
                self.set_segment(id, store.segment_path(id));
            }
        }
    }
}

impl WalkIndexView for FrozenWalks {
    #[inline]
    fn r(&self) -> usize {
        self.r
    }

    #[inline]
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn segment_path(&self, id: SegmentId) -> &[NodeId] {
        let slot = id.index();
        self.chunks[slot / SEGMENTS_PER_CHUNK].path(slot % SEGMENTS_PER_CHUNK)
    }

    #[inline]
    fn source_of(&self, id: SegmentId) -> NodeId {
        id.source(self.r)
    }

    fn segment_ids_of(&self, node: NodeId) -> impl Iterator<Item = SegmentId> + '_ {
        let r = self.r;
        (0..r).map(move |slot| SegmentId::new(node, slot, r))
    }

    #[inline]
    fn visit_count(&self, node: NodeId) -> u64 {
        self.counts[node.index() / COUNTS_PER_CHUNK][node.index() % COUNTS_PER_CHUNK]
    }

    fn visit_counts(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.node_count);
        for chunk in &self.counts {
            let take = (self.node_count - out.len()).min(COUNTS_PER_CHUNK);
            out.extend_from_slice(&chunk[..take]);
        }
        out
    }

    #[inline]
    fn total_visits(&self) -> u64 {
        self.total_visits
    }
}

/// One chunk of frozen adjacency: the out- and in-neighbour lists of
/// `NODES_PER_GRAPH_CHUNK` consecutive nodes, each list its own `Arc` slice.
/// Cloning a chunk bumps refcounts only; refreshing one node reallocates just that
/// node's lists — so a batch's mirror cost is proportional to the degrees of its
/// endpoints, not to chunk payloads.
#[derive(Debug, Clone)]
struct GraphChunk {
    out: Vec<Arc<[NodeId]>>,
    incoming: Vec<Arc<[NodeId]>>,
}

impl GraphChunk {
    fn new(empty: &Arc<[NodeId]>) -> Self {
        GraphChunk {
            out: vec![Arc::clone(empty); NODES_PER_GRAPH_CHUNK],
            incoming: vec![Arc::clone(empty); NODES_PER_GRAPH_CHUNK],
        }
    }
}

/// A frozen Social-Store adjacency generation: the exact out- and in-neighbour lists
/// (order included — sampling picks by position) behind chunked `Arc`s.
///
/// Cloning is cheap; [`FrozenGraph::refresh_nodes`] advances it by one batch, copying
/// only the chunks holding endpoints the batch touched.
#[derive(Debug, Clone)]
pub struct FrozenGraph {
    node_count: usize,
    edge_count: usize,
    chunks: Vec<Arc<GraphChunk>>,
    /// The shared empty list isolated nodes point at.
    empty: Arc<[NodeId]>,
}

impl FrozenGraph {
    /// Freezes a full copy of `graph`.  O(graph) — done once per serving session.
    pub fn from_graph<G: GraphView + ?Sized>(graph: &G) -> Self {
        let mut frozen = FrozenGraph {
            node_count: 0,
            edge_count: 0,
            chunks: Vec::new(),
            empty: Arc::from(&[][..]),
        };
        frozen.ensure_nodes(graph.node_count());
        frozen.refresh_nodes(graph, graph.nodes());
        frozen
    }

    /// Grows the view to address at least `n` nodes (new nodes start isolated).
    pub fn ensure_nodes(&mut self, n: usize) {
        if n <= self.node_count {
            return;
        }
        self.node_count = n;
        let chunks = n.div_ceil(NODES_PER_GRAPH_CHUNK);
        let empty = Arc::clone(&self.empty);
        self.chunks
            .resize_with(chunks, || Arc::new(GraphChunk::new(&empty)));
    }

    /// Re-copies the adjacency lists of `nodes` out of `graph` (which must already
    /// reflect the batch), keeping `edge_count` in sync with the source graph.  The
    /// writer calls this with the distinct endpoints of each committed batch.
    pub fn refresh_nodes<G: GraphView + ?Sized>(
        &mut self,
        graph: &G,
        nodes: impl IntoIterator<Item = NodeId>,
    ) {
        self.ensure_nodes(graph.node_count());
        for node in nodes {
            self.refresh_out(graph, node);
            self.refresh_in(graph, node);
        }
        self.edge_count = graph.edge_count();
    }

    /// Direction-split refresh for edge batches: an edge only changes its source's
    /// out-list and its target's in-list, so the writer refreshes exactly those —
    /// half the work of refreshing both directions of every endpoint.  Both node
    /// sets must come from the post-batch `graph`.
    pub fn refresh_endpoints<G: GraphView + ?Sized>(
        &mut self,
        graph: &G,
        sources: impl IntoIterator<Item = NodeId>,
        targets: impl IntoIterator<Item = NodeId>,
    ) {
        self.ensure_nodes(graph.node_count());
        for node in sources {
            self.refresh_out(graph, node);
        }
        for node in targets {
            self.refresh_in(graph, node);
        }
        self.edge_count = graph.edge_count();
    }

    fn refresh_out<G: GraphView + ?Sized>(&mut self, graph: &G, node: NodeId) {
        let chunk = Arc::make_mut(&mut self.chunks[node.index() / NODES_PER_GRAPH_CHUNK]);
        let out = graph.out_neighbors(node);
        chunk.out[node.index() % NODES_PER_GRAPH_CHUNK] = if out.is_empty() {
            Arc::clone(&self.empty)
        } else {
            Arc::from(out)
        };
    }

    fn refresh_in<G: GraphView + ?Sized>(&mut self, graph: &G, node: NodeId) {
        let chunk = Arc::make_mut(&mut self.chunks[node.index() / NODES_PER_GRAPH_CHUNK]);
        let incoming = graph.in_neighbors(node);
        chunk.incoming[node.index() % NODES_PER_GRAPH_CHUNK] = if incoming.is_empty() {
            Arc::clone(&self.empty)
        } else {
            Arc::from(incoming)
        };
    }

    /// The node's out-adjacency as a shared slice (what a fetch materialises).
    pub fn shared_out_neighbors(&self, node: NodeId) -> Arc<[NodeId]> {
        Arc::clone(
            &self.chunks[node.index() / NODES_PER_GRAPH_CHUNK].out
                [node.index() % NODES_PER_GRAPH_CHUNK],
        )
    }
}

impl GraphView for FrozenGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_count
    }

    #[inline]
    fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.chunks[node.index() / NODES_PER_GRAPH_CHUNK].out[node.index() % NODES_PER_GRAPH_CHUNK]
    }

    #[inline]
    fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.chunks[node.index() / NODES_PER_GRAPH_CHUNK].incoming
            [node.index() % NODES_PER_GRAPH_CHUNK]
    }
}

/// The paper's data-access model for personalized queries: one *fetch* brings a
/// node's full out-adjacency into the walker's memory.  The walker is generic over
/// this trait, so the same query runs against the live [`crate::SocialStore`] (with
/// its fetch metrics), a pinned [`FrozenGraph`] generation, or a caching wrapper.
pub trait AdjacencyFetch {
    /// Number of nodes the store addresses.
    fn node_count(&self) -> usize;

    /// One fetch: copies `node`'s out-adjacency into `out` (cleared first).
    fn fetch_out(&self, node: NodeId, out: &mut Vec<NodeId>);
}

impl AdjacencyFetch for FrozenGraph {
    fn node_count(&self) -> usize {
        GraphView::node_count(self)
    }

    fn fetch_out(&self, node: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(self.out_neighbors(node));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walks::WalkStore;
    use ppr_graph::{DynamicGraph, Edge};

    fn path(nodes: &[u32]) -> Vec<NodeId> {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    fn assert_views_equal<W: WalkIndexView>(frozen: &FrozenWalks, store: &W, context: &str) {
        assert_eq!(frozen.node_count(), store.node_count(), "{context}: nodes");
        assert_eq!(frozen.r(), store.r(), "{context}: r");
        assert_eq!(
            frozen.total_visits(),
            store.total_visits(),
            "{context}: total_visits"
        );
        assert_eq!(
            frozen.visit_counts(),
            store.visit_counts(),
            "{context}: visit counts"
        );
        for g in 0..store.node_count() {
            let node = NodeId::from_index(g);
            assert_eq!(frozen.visit_count(node), store.visit_count(node));
            for id in store.segment_ids_of(node) {
                assert_eq!(
                    frozen.segment_path(id),
                    store.segment_path(id),
                    "{context}: segment {id:?}"
                );
            }
        }
    }

    #[test]
    fn freeze_reproduces_the_store_exactly() {
        let mut store = WalkStore::new(150, 3);
        for n in 0..150u32 {
            let id = SegmentId::new(NodeId(n), (n as usize) % 3, 3);
            store.set_segment(id, &path(&[n, (n + 7) % 150, (n + 1) % 150]));
        }
        let frozen = FrozenWalks::from_index(&store, 9);
        assert_eq!(frozen.epoch(), 9);
        assert_views_equal(&frozen, &store, "full freeze");
    }

    #[test]
    fn apply_rewrites_advances_the_view_like_the_store() {
        let mut store = WalkStore::new(200, 2);
        let mut frozen = FrozenWalks::from_index(&store, 0);
        for round in 0..5u32 {
            let mut plan = SegmentRewrites::new();
            for k in 0..40u32 {
                let node = (round * 37 + k * 11) % 200;
                let id = SegmentId::new(NodeId(node), (k as usize) % 2, 2);
                let p = path(&[node, (node + round + 1) % 200, (node + 2 * k) % 200]);
                plan.push(id, &p);
            }
            for (id, p) in plan.iter() {
                store.set_segment(id, p);
            }
            frozen.apply_rewrites(&plan);
            frozen.set_epoch(round as u64 + 1);
            assert_views_equal(&frozen, &store, &format!("round {round}"));
        }
    }

    #[test]
    fn cow_keeps_pinned_clones_unchanged() {
        let mut store = WalkStore::new(64, 1);
        let id = SegmentId::new(NodeId(5), 0, 1);
        store.set_segment(id, &path(&[5, 6, 7]));
        let mut mirror = FrozenWalks::from_index(&store, 0);
        let pinned = mirror.clone(); // a published generation readers still hold

        let mut plan = SegmentRewrites::new();
        plan.push(id, &path(&[5, 8]));
        mirror.apply_rewrites(&plan);
        mirror.set_epoch(1);

        assert_eq!(pinned.segment_path(id), path(&[5, 6, 7]).as_slice());
        assert_eq!(pinned.visit_count(NodeId(7)), 1);
        assert_eq!(pinned.total_visits(), 3);
        assert_eq!(mirror.segment_path(id), path(&[5, 8]).as_slice());
        assert_eq!(mirror.visit_count(NodeId(7)), 0);
        assert_eq!(mirror.total_visits(), 2);
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(mirror.epoch(), 1);
    }

    #[test]
    fn node_growth_syncs_new_segments() {
        let mut store = WalkStore::new(4, 2);
        store.set_segment(SegmentId::new(NodeId(1), 0, 2), &path(&[1, 2]));
        let mut frozen = FrozenWalks::from_index(&store, 0);
        store.ensure_nodes(70); // crosses a chunk boundary
        store.set_segment(SegmentId::new(NodeId(69), 1, 2), &path(&[69, 1]));
        frozen.sync_segments_from(&store, 4, 70);
        assert_views_equal(&frozen, &store, "after growth");
    }

    #[test]
    fn frozen_graph_mirrors_adjacency_and_cow_isolates_pins() {
        let mut graph = DynamicGraph::with_nodes(130);
        for i in 0..129u32 {
            graph.add_edge(Edge::new(i, i + 1));
        }
        let mut frozen = FrozenGraph::from_graph(&graph);
        assert_eq!(GraphView::node_count(&frozen), 130);
        assert_eq!(frozen.edge_count(), 129);
        assert_eq!(frozen.out_neighbors(NodeId(3)), &[NodeId(4)]);
        assert_eq!(frozen.in_neighbors(NodeId(4)), &[NodeId(3)]);

        let pinned = frozen.clone();
        graph.add_edge(Edge::new(3, 100));
        graph.remove_edge(Edge::new(64, 65));
        frozen.refresh_nodes(&graph, [NodeId(3), NodeId(100), NodeId(64), NodeId(65)]);
        assert_eq!(frozen.out_neighbors(NodeId(3)), &[NodeId(4), NodeId(100)]);
        assert_eq!(frozen.out_neighbors(NodeId(64)), &[] as &[NodeId]);
        assert_eq!(frozen.edge_count(), 129);
        // The pinned clone still sees the pre-batch lists.
        assert_eq!(pinned.out_neighbors(NodeId(3)), &[NodeId(4)]);
        assert_eq!(pinned.out_neighbors(NodeId(64)), &[NodeId(65)]);

        let mut buf = Vec::new();
        frozen.fetch_out(NodeId(3), &mut buf);
        assert_eq!(buf, path(&[4, 100]));
    }

    #[test]
    fn store_snapshot_view_wrappers_freeze_identically() {
        // The per-layout convenience wrappers are the discoverable entry point the
        // serving docs name; they must be exactly FrozenWalks::from_index.
        let mut flat = WalkStore::new(9, 2);
        flat.set_segment(SegmentId::new(NodeId(1), 0, 2), &path(&[1, 4, 7]));
        let view = flat.snapshot_view(3);
        assert_eq!(view.epoch(), 3);
        assert_views_equal(&view, &flat, "flat snapshot_view");

        let mut sharded = crate::ShardedWalkStore::new(9, 2, 3);
        crate::WalkIndexMut::set_segment(
            &mut sharded,
            SegmentId::new(NodeId(1), 0, 2),
            &path(&[1, 4, 7]),
        );
        let view = sharded.snapshot_view(4);
        assert_eq!(view.epoch(), 4);
        assert_views_equal(&view, &sharded, "sharded snapshot_view");
    }

    #[test]
    fn frozen_graph_growth_starts_isolated() {
        let graph = DynamicGraph::with_nodes(2);
        let mut frozen = FrozenGraph::from_graph(&graph);
        frozen.ensure_nodes(100);
        assert_eq!(GraphView::node_count(&frozen), 100);
        assert!(frozen.out_neighbors(NodeId(99)).is_empty());
    }
}
