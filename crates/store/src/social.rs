//! The Social Store: a FlockDB stand-in with fetch accounting.
//!
//! In the paper's data-access model the social graph lives in distributed shared memory
//! and is accessed randomly; the cost charged to the personalized-PageRank algorithm is
//! the number of *fetch* operations it issues, where a fetch at node `u` returns all of
//! `u`'s outgoing edges (and, at the algorithm level, the `R` cached walk segments
//! starting at `u`).  [`SocialStore`] wraps a [`DynamicGraph`], counts every access, and
//! simulates the sharded layout of a distributed store so experiments can also inspect
//! per-shard load.

use crate::metrics::{AtomicStoreMetrics, StoreMetrics};
use ppr_graph::{DynamicGraph, Edge, GraphView, NodeId};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// The social graph behind an instrumented access API.
#[derive(Debug)]
pub struct SocialStore {
    graph: DynamicGraph,
    metrics: AtomicStoreMetrics,
    shard_count: usize,
    shard_fetches: Vec<AtomicU64>,
}

/// Result of a fetch operation: the full out-adjacency of the fetched node.
///
/// The walk segments associated with the node are owned by the PageRank Store
/// ([`crate::WalkStore`]); the personalized walker combines the two at the call site, so
/// a single `fetch` in the paper's sense corresponds to exactly one call of
/// [`SocialStore::fetch`].
#[derive(Debug, Clone, Copy)]
pub struct Fetched<'a> {
    /// The fetched node.
    pub node: NodeId,
    /// All outgoing edges of the node at fetch time.
    pub out_neighbors: &'a [NodeId],
}

impl SocialStore {
    /// Creates a store over `n` isolated nodes, sharded `shard_count` ways.
    pub fn new(n: usize, shard_count: usize) -> Self {
        Self::from_graph(DynamicGraph::with_nodes(n), shard_count)
    }

    /// Wraps an existing graph.
    pub fn from_graph(graph: DynamicGraph, shard_count: usize) -> Self {
        assert!(shard_count >= 1, "need at least one shard");
        SocialStore {
            graph,
            metrics: AtomicStoreMetrics::default(),
            shard_count,
            shard_fetches: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Read-only access to the underlying graph (not counted as a fetch; used by the
    /// maintenance path that co-locates with the store, and by tests).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Number of nodes currently in the store.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges currently in the store.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The shard a node lives on — the shared [`crate::routing::shard_of`] modulo rule,
    /// so the Social Store and a [`crate::ShardedWalkStore`] with the same shard count
    /// always agree on a node's placement.
    pub fn shard_of(&self, node: NodeId) -> usize {
        crate::routing::shard_of(node, self.shard_count)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Fetch operation: returns the full out-adjacency of `node` and counts one fetch
    /// (plus the volume of data returned) against the store metrics.
    pub fn fetch(&self, node: NodeId) -> Fetched<'_> {
        let out_neighbors = self.graph.out_neighbors(node);
        self.metrics.fetches.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .edges_returned
            .fetch_add(out_neighbors.len() as u64, Ordering::Relaxed);
        self.shard_fetches[self.shard_of(node)].fetch_add(1, Ordering::Relaxed);
        Fetched {
            node,
            out_neighbors,
        }
    }

    /// The Remark 1 variant of a fetch: return a single uniformly sampled out-neighbour
    /// instead of the whole adjacency.  Counted separately from full fetches.
    pub fn sample_out_neighbor<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        rng: &mut R,
    ) -> Option<NodeId> {
        self.metrics
            .sampled_neighbor_queries
            .fetch_add(1, Ordering::Relaxed);
        self.graph.random_out_neighbor(node, rng)
    }

    /// Ensures the store can address nodes `0..n`.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.graph.ensure_nodes(n);
    }

    /// Inserts an edge (counted in the metrics).  Grows the node set if necessary.
    pub fn add_edge(&mut self, edge: Edge) {
        self.graph.add_edge_growing(edge);
        self.metrics.edge_insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes one occurrence of `edge`, returning whether it was present.
    pub fn remove_edge(&mut self, edge: Edge) -> bool {
        let removed = self.graph.remove_edge(edge);
        if removed {
            self.metrics.edge_deletions.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Out-degree of `node` — the `d(v)` counter of Section 2.2 (not counted as a fetch:
    /// the paper keeps this counter co-located with the arrival path precisely so that
    /// the pre-filter needs no store access).
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.graph.out_degree(node)
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.graph.in_degree(node)
    }

    /// Snapshot of the access metrics.
    pub fn metrics(&self) -> StoreMetrics {
        self.metrics.snapshot()
    }

    /// Atomically (per counter) snapshots and zeroes the access metrics: the
    /// interval read used by telemetry samplers.  Unlike a `metrics()` +
    /// `reset_metrics()` pair, no concurrent increment can land in both the
    /// returned window and the next one.  Per-shard fetch counts are left
    /// untouched (they remain cumulative).
    pub fn metrics_and_reset(&self) -> StoreMetrics {
        self.metrics.snapshot_and_reset()
    }

    /// Resets all access metrics (including per-shard counts) to zero.
    pub fn reset_metrics(&self) {
        self.metrics.reset();
        for shard in &self.shard_fetches {
            shard.store(0, Ordering::Relaxed);
        }
    }

    /// Per-shard fetch counts since the last reset.
    pub fn shard_fetch_counts(&self) -> Vec<u64> {
        self.shard_fetches
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Consumes the store and returns the underlying graph.
    pub fn into_graph(self) -> DynamicGraph {
        self.graph
    }
}

/// The walker-facing fetch surface: one fetch copies the node's out-adjacency and is
/// charged to the store metrics, exactly like [`SocialStore::fetch`].
impl crate::view::AdjacencyFetch for SocialStore {
    fn node_count(&self) -> usize {
        SocialStore::node_count(self)
    }

    fn fetch_out(&self, node: NodeId, out: &mut Vec<NodeId>) {
        let fetched = self.fetch(node);
        out.clear();
        out.extend_from_slice(fetched.out_neighbors);
    }
}

/// Wraps a graph in a single-shard store without copying it.  This is the conversion
/// the engines' `from_graph` constructors use, so building an engine over a large graph
/// never doubles peak memory.
impl From<DynamicGraph> for SocialStore {
    fn from(graph: DynamicGraph) -> Self {
        SocialStore::from_graph(graph, 1)
    }
}

/// Clones the graph into a single-shard store.  Prefer passing the graph by value (the
/// [`From<DynamicGraph>`] impl) when the original is no longer needed — the reference
/// form exists so read-only callers (tests, benches replaying one graph many times) can
/// keep theirs.
impl From<&DynamicGraph> for SocialStore {
    fn from(graph: &DynamicGraph) -> Self {
        SocialStore::from_graph(graph.clone(), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::directed_cycle;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fetch_returns_adjacency_and_counts() {
        let mut store = SocialStore::new(3, 2);
        store.add_edge(Edge::new(0, 1));
        store.add_edge(Edge::new(0, 2));
        let fetched = store.fetch(NodeId(0));
        assert_eq!(fetched.node, NodeId(0));
        assert_eq!(fetched.out_neighbors, &[NodeId(1), NodeId(2)]);
        let metrics = store.metrics();
        assert_eq!(metrics.fetches, 1);
        assert_eq!(metrics.edges_returned, 2);
        assert_eq!(metrics.edge_insertions, 2);
    }

    #[test]
    fn fetching_a_dangling_node_returns_empty_but_still_counts() {
        let store = SocialStore::new(2, 1);
        let fetched = store.fetch(NodeId(1));
        assert!(fetched.out_neighbors.is_empty());
        assert_eq!(store.metrics().fetches, 1);
        assert_eq!(store.metrics().edges_returned, 0);
    }

    #[test]
    fn sampled_neighbor_queries_are_counted_separately() {
        let store = SocialStore::from_graph(directed_cycle(5), 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let v = store.sample_out_neighbor(NodeId(0), &mut rng);
        assert_eq!(v, Some(NodeId(1)));
        let metrics = store.metrics();
        assert_eq!(metrics.fetches, 0);
        assert_eq!(metrics.sampled_neighbor_queries, 1);
    }

    #[test]
    fn add_and_remove_edges_update_metrics() {
        let mut store = SocialStore::new(2, 1);
        store.add_edge(Edge::new(0, 1));
        assert!(store.remove_edge(Edge::new(0, 1)));
        assert!(!store.remove_edge(Edge::new(0, 1)));
        let metrics = store.metrics();
        assert_eq!(metrics.edge_insertions, 1);
        assert_eq!(metrics.edge_deletions, 1);
        assert_eq!(store.edge_count(), 0);
    }

    #[test]
    fn add_edge_grows_node_set() {
        let mut store = SocialStore::new(1, 1);
        store.add_edge(Edge::new(0, 9));
        assert_eq!(store.node_count(), 10);
        assert_eq!(store.out_degree(NodeId(0)), 1);
        assert_eq!(store.in_degree(NodeId(9)), 1);
    }

    #[test]
    fn shard_placement_and_counters() {
        let store = SocialStore::from_graph(directed_cycle(6), 3);
        assert_eq!(store.shard_count(), 3);
        assert_eq!(store.shard_of(NodeId(4)), 1);
        store.fetch(NodeId(0));
        store.fetch(NodeId(3));
        store.fetch(NodeId(1));
        assert_eq!(store.shard_fetch_counts(), vec![2, 1, 0]);
        store.reset_metrics();
        assert_eq!(store.shard_fetch_counts(), vec![0, 0, 0]);
        assert_eq!(store.metrics(), StoreMetrics::default());
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let _ = SocialStore::new(1, 0);
    }

    #[test]
    fn shard_placement_never_disagrees_with_the_sharded_walk_store() {
        // Regression: `shard_of` used to be an inline `node % shard_count` here and a
        // separate computation in the PageRank Store; both now route through
        // `routing::shard_of`, and this test pins the agreement for good.
        for shard_count in 1..9usize {
            let social = SocialStore::new(64, shard_count);
            let walks = crate::ShardedWalkStore::new(64, 2, shard_count);
            for node in 0..64u32 {
                let node = NodeId(node);
                assert_eq!(
                    social.shard_of(node),
                    walks.shard_of(node),
                    "stores disagree on node {node} with {shard_count} shards"
                );
                assert_eq!(
                    social.shard_of(node),
                    crate::routing::shard_of(node, shard_count)
                );
            }
        }
    }

    #[test]
    fn into_graph_returns_underlying_graph() {
        let store = SocialStore::from_graph(directed_cycle(4), 1);
        let graph = store.into_graph();
        assert_eq!(graph.node_count(), 4);
        assert_eq!(graph.edge_count(), 4);
    }
}
