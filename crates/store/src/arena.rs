//! Flat step arena: the backing memory of the PageRank Store.
//!
//! Every stored walk segment used to own its path as a separate heap `Vec<NodeId>`,
//! which made the reroute hot path allocation-bound: each repair dropped one vector and
//! allocated another.  [`StepArena`] replaces that layout with **one shared step buffer**
//! plus a per-segment `(offset, len, cap)` slot:
//!
//! * a rewrite whose new path fits the slot's reserved capacity is a plain
//!   `copy_from_slice` into the shared buffer — **zero heap allocations**;
//! * a rewrite that outgrows its slot relocates the segment to the arena tail (amortised
//!   growth of the single shared vector) and leaves the old region behind as garbage;
//! * when the garbage exceeds the live data, the arena compacts in one linear pass,
//!   re-packing every slot with a fresh power-of-two reservation.
//!
//! Slot capacities are rounded up to powers of two (minimum [`MIN_SLOT_CAP`]), so in
//! steady state — segment lengths fluctuating around their geometric mean `1/ε` — almost
//! every reroute lands in place.  [`ArenaStats`] exposes the in-place/relocation split so
//! tests and benches can assert exactly that.

use ppr_graph::NodeId;

/// Smallest capacity reserved for a non-empty segment.  Expected segment length is
/// `1/ε` (5 visits at the paper's ε = 0.2) with a geometric tail, so 16 steps absorb all
/// but a few percent of segments outright.
pub const MIN_SLOT_CAP: usize = 16;

/// Default garbage-to-live ratio of the compaction trigger: the classic half-dead
/// rule (compact when relocation garbage exceeds the live data).
pub const DEFAULT_COMPACT_RATIO: f64 = 1.0;

/// Filler value for reserved-but-unused arena cells (never read through a slot).
const FILLER: NodeId = NodeId(u32::MAX);

/// One segment's region of the arena.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    offset: usize,
    len: u32,
    cap: u32,
}

/// Allocation-behaviour counters of a [`StepArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Rewrites that fit their slot's existing capacity (no allocation, no new region).
    pub in_place_writes: u64,
    /// Rewrites that outgrew their slot and moved to the arena tail.
    pub relocations: u64,
    /// Number of whole-arena compaction passes performed.
    pub compactions: u64,
    /// Total wall time spent inside compaction passes, in nanoseconds.  Compactions
    /// run inline on the write path, so this is pure pause time as seen by callers —
    /// the number the ROADMAP's "compaction policy tuning" item needs.
    pub compaction_nanos: u64,
    /// Total live steps copied by compaction passes (the work a pass actually moves;
    /// 4 bytes per step).
    pub compaction_steps_moved: u64,
    /// Total live steps currently stored.
    pub live_steps: usize,
    /// Steps of garbage capacity left behind by relocations (reclaimed on compaction).
    pub dead_steps: usize,
    /// Total length of the shared step buffer (live + reserved + dead).
    pub buffer_len: usize,
}

impl ArenaStats {
    /// Adds another arena's counters into this one (used by sharded stores to report
    /// one aggregate over their per-shard arenas).
    pub fn merge(&mut self, other: &ArenaStats) {
        self.in_place_writes += other.in_place_writes;
        self.relocations += other.relocations;
        self.compactions += other.compactions;
        self.compaction_nanos += other.compaction_nanos;
        self.compaction_steps_moved += other.compaction_steps_moved;
        self.live_steps += other.live_steps;
        self.dead_steps += other.dead_steps;
        self.buffer_len += other.buffer_len;
    }
}

/// A flat arena of walk steps with per-segment slots.
#[derive(Debug, Clone)]
pub struct StepArena {
    steps: Vec<NodeId>,
    slots: Vec<Slot>,
    live: usize,
    dead: usize,
    /// Garbage-to-live ratio above which a relocation triggers compaction (the
    /// half-dead rule generalized; see [`StepArena::set_compaction_threshold`]).
    compact_ratio: f64,
    in_place_writes: u64,
    relocations: u64,
    compactions: u64,
    compaction_nanos: u64,
    compaction_steps_moved: u64,
}

impl Default for StepArena {
    fn default() -> Self {
        StepArena {
            steps: Vec::new(),
            slots: Vec::new(),
            live: 0,
            dead: 0,
            compact_ratio: DEFAULT_COMPACT_RATIO,
            in_place_writes: 0,
            relocations: 0,
            compactions: 0,
            compaction_nanos: 0,
            compaction_steps_moved: 0,
        }
    }
}

impl StepArena {
    /// Creates an arena with `slot_count` empty slots.
    pub fn new(slot_count: usize) -> Self {
        StepArena {
            slots: vec![Slot::default(); slot_count],
            ..StepArena::default()
        }
    }

    /// Sets the garbage-to-live ratio above which a relocation triggers a compaction
    /// pass.  The default `1.0` is the classic half-dead rule (compact when garbage
    /// exceeds the live data); a tighter ratio trades more frequent compaction pauses
    /// for a smaller buffer — the [`ArenaStats`] counters measure both sides of that
    /// trade.  A small floor of `MIN_SLOT_CAP / 2` garbage steps per slot always
    /// applies, so tiny stores do not compact on every relocation.
    ///
    /// # Panics
    ///
    /// Panics unless `ratio` is finite and positive.
    pub fn set_compaction_threshold(&mut self, ratio: f64) {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "compaction threshold must be a positive ratio, got {ratio}"
        );
        self.compact_ratio = ratio;
    }

    /// Number of slots (segments) addressed by the arena.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Grows the arena to at least `n` slots; new slots start empty.
    pub fn ensure_slots(&mut self, n: usize) {
        if n > self.slots.len() {
            self.slots.resize(n, Slot::default());
        }
    }

    /// The stored path of slot `slot` (empty if never written or cleared).
    #[inline]
    pub fn path(&self, slot: usize) -> &[NodeId] {
        let s = self.slots[slot];
        &self.steps[s.offset..s.offset + s.len as usize]
    }

    /// Length of the stored path of slot `slot`.
    #[inline]
    pub fn len_of(&self, slot: usize) -> usize {
        self.slots[slot].len as usize
    }

    /// Replaces the path of slot `slot`.  Writes in place when the new path fits the
    /// slot's reserved capacity; relocates to the arena tail (and eventually compacts)
    /// otherwise.
    pub fn write(&mut self, slot: usize, path: &[NodeId]) {
        let s = self.slots[slot];
        self.live = self.live - s.len as usize + path.len();
        if path.len() <= s.cap as usize {
            self.steps[s.offset..s.offset + path.len()].copy_from_slice(path);
            self.slots[slot].len = path.len() as u32;
            self.in_place_writes += 1;
            return;
        }
        self.dead += s.cap as usize;
        // First fills get a tight reservation; growth relocations double it, so a slot
        // whose segment keeps drawing longer geometric suffixes relocates O(1) times
        // over its lifetime instead of on every record-length draw.
        let cap = if s.cap == 0 {
            Self::reservation(path.len())
        } else {
            Self::reservation(path.len() * 2)
        };
        let offset = self.steps.len();
        self.steps.extend_from_slice(path);
        self.steps.resize(offset + cap, FILLER);
        self.slots[slot] = Slot {
            offset,
            len: path.len() as u32,
            cap: cap as u32,
        };
        self.relocations += 1;
        self.maybe_compact();
    }

    /// Empties slot `slot`, keeping its reserved capacity for reuse.
    pub fn clear(&mut self, slot: usize) {
        self.live -= self.slots[slot].len as usize;
        self.slots[slot].len = 0;
    }

    /// Snapshot of the allocation-behaviour counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            in_place_writes: self.in_place_writes,
            relocations: self.relocations,
            compactions: self.compactions,
            compaction_nanos: self.compaction_nanos,
            compaction_steps_moved: self.compaction_steps_moved,
            live_steps: self.live,
            dead_steps: self.dead,
            buffer_len: self.steps.len(),
        }
    }

    /// Capacity reserved for a path of `len` steps: next power of two, at least
    /// [`MIN_SLOT_CAP`].
    #[inline]
    fn reservation(len: usize) -> usize {
        len.next_power_of_two().max(MIN_SLOT_CAP)
    }

    /// Compacts when relocation garbage exceeds `compact_ratio` times the live data
    /// (at the default ratio of 1.0 this is the classic half-dead rule: amortised O(1)
    /// per relocated step, and the buffer never exceeds ~2× its packed size for long).
    fn maybe_compact(&mut self) {
        let threshold = (self.live as f64 * self.compact_ratio)
            .max((MIN_SLOT_CAP * self.slots.len() / 2) as f64);
        if self.dead as f64 <= threshold {
            return;
        }
        let started = std::time::Instant::now();
        let reserved: usize = self
            .slots
            .iter()
            .map(|s| Self::reservation(s.len as usize))
            .sum();
        let mut packed = Vec::with_capacity(reserved);
        for s in &mut self.slots {
            let cap = Self::reservation(s.len as usize);
            let offset = packed.len();
            packed.extend_from_slice(&self.steps[s.offset..s.offset + s.len as usize]);
            packed.resize(offset + cap, FILLER);
            s.offset = offset;
            s.cap = cap as u32;
        }
        self.steps = packed;
        self.dead = 0;
        self.compactions += 1;
        self.compaction_steps_moved += self.live as u64;
        self.compaction_nanos += started.elapsed().as_nanos() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn write_and_read_roundtrip() {
        let mut arena = StepArena::new(3);
        arena.write(1, &nodes(&[4, 5, 6]));
        assert_eq!(arena.path(1), nodes(&[4, 5, 6]).as_slice());
        assert_eq!(arena.path(0), &[]);
        assert_eq!(arena.len_of(1), 3);
        assert_eq!(arena.stats().live_steps, 3);
    }

    #[test]
    fn rewrites_within_capacity_do_not_relocate() {
        let mut arena = StepArena::new(1);
        arena.write(0, &nodes(&[1, 2, 3]));
        let relocations = arena.stats().relocations;
        for round in 0..100u32 {
            // Lengths 1..=8 all fit the minimum 8-step reservation.
            let path: Vec<NodeId> = (0..(round % 8 + 1)).map(NodeId).collect();
            arena.write(0, &path);
        }
        let stats = arena.stats();
        assert_eq!(stats.relocations, relocations, "all rewrites fit in place");
        assert_eq!(stats.in_place_writes, 100);
    }

    #[test]
    fn outgrowing_a_slot_relocates_and_preserves_content() {
        let mut arena = StepArena::new(2);
        arena.write(0, &nodes(&[1, 2]));
        arena.write(1, &nodes(&[3]));
        let long: Vec<NodeId> = (0..50).map(NodeId).collect();
        arena.write(0, &long);
        assert_eq!(arena.path(0), long.as_slice());
        assert_eq!(arena.path(1), nodes(&[3]).as_slice());
        assert!(arena.stats().relocations >= 3);
    }

    #[test]
    fn clear_keeps_capacity_for_reuse() {
        let mut arena = StepArena::new(1);
        arena.write(0, &nodes(&[1, 2, 3]));
        arena.clear(0);
        assert_eq!(arena.path(0), &[]);
        assert_eq!(arena.stats().live_steps, 0);
        let before = arena.stats().relocations;
        arena.write(0, &nodes(&[7, 8]));
        assert_eq!(arena.stats().relocations, before, "cleared slot reused");
        assert_eq!(arena.path(0), nodes(&[7, 8]).as_slice());
    }

    #[test]
    fn compaction_reclaims_garbage_and_keeps_all_paths() {
        let mut arena = StepArena::new(8);
        // Lengths just past each power of two force a relocation per write, piling up
        // abandoned regions until the half-dead rule fires.
        for &len in &[9u32, 17, 33, 65] {
            for slot in 0..8 {
                let path: Vec<NodeId> = (0..len).map(NodeId).collect();
                arena.write(slot, &path);
            }
        }
        let stats = arena.stats();
        assert!(
            stats.compactions > 0,
            "garbage should have forced compaction"
        );
        assert!(
            stats.compaction_steps_moved >= stats.compactions * 8,
            "each pass moves at least the live steps of the 8 slots: {stats:?}"
        );
        assert!(
            stats.compaction_nanos > 0,
            "compaction pause time must be recorded: {stats:?}"
        );
        assert!(
            stats.dead_steps <= stats.live_steps.max(MIN_SLOT_CAP * 8 / 2),
            "compaction keeps garbage below the live data: {stats:?}"
        );
        for slot in 0..8 {
            let expect: Vec<NodeId> = (0..65).map(NodeId).collect();
            assert_eq!(arena.path(slot), expect.as_slice());
        }
    }

    #[test]
    fn ensure_slots_grows_but_never_shrinks() {
        let mut arena = StepArena::new(2);
        arena.write(1, &nodes(&[9]));
        arena.ensure_slots(5);
        assert_eq!(arena.slot_count(), 5);
        assert_eq!(arena.path(1), nodes(&[9]).as_slice());
        arena.ensure_slots(1);
        assert_eq!(arena.slot_count(), 5);
    }

    #[test]
    fn tighter_compaction_threshold_reduces_live_byte_waste_on_churn() {
        // The satellite regression for the `compaction_threshold` knob: the same
        // relocation-heavy churn (each write just past the previous power-of-two
        // cap abandons a region) run at the default half-dead rule and at a 4x
        // tighter ratio.  The tight arena must compact more often and carry strictly
        // less garbage — buying a smaller buffer with more (measured) pause time.
        let run = |ratio: f64| {
            let mut arena = StepArena::new(16);
            arena.set_compaction_threshold(ratio);
            for round in 0..6u32 {
                let len = 9 * (1 << round); // 9, 18, 36, ... always past the cap
                for slot in 0..16 {
                    let path: Vec<NodeId> = (0..len).map(NodeId).collect();
                    arena.write(slot, &path);
                }
            }
            arena.stats()
        };
        let default = run(DEFAULT_COMPACT_RATIO);
        let tight = run(0.25);
        assert_eq!(
            tight.live_steps, default.live_steps,
            "identical churn stores identical live data"
        );
        assert!(
            tight.compactions > default.compactions,
            "a tighter ratio must compact more often: {tight:?} vs {default:?}"
        );
        assert!(
            tight.dead_steps < default.dead_steps,
            "a tighter ratio must leave less garbage: {} vs {}",
            tight.dead_steps,
            default.dead_steps
        );
        // The knob's invariant: garbage stays below ratio * live (+ the slot floor).
        let floor = (MIN_SLOT_CAP * 16 / 2) as f64;
        assert!(
            tight.dead_steps as f64 <= (tight.live_steps as f64 * 0.25).max(floor),
            "tight arena exceeded its garbage bound: {tight:?}"
        );
    }

    #[test]
    #[should_panic(expected = "positive ratio")]
    fn compaction_threshold_rejects_zero() {
        StepArena::new(1).set_compaction_threshold(0.0);
    }

    #[test]
    fn empty_write_into_fresh_slot_is_in_place() {
        let mut arena = StepArena::new(1);
        arena.write(0, &[]);
        assert_eq!(arena.stats().relocations, 0);
        assert_eq!(arena.stats().in_place_writes, 1);
        assert_eq!(arena.path(0), &[]);
    }
}
