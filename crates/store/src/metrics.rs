//! Instrumentation counters.
//!
//! The paper's efficiency claims are stated in terms of abstract work units — fetches
//! against the Social Store, walk segments rebuilt, walk steps re-simulated — rather
//! than wall-clock time on Twitter's hardware.  These counters make those quantities
//! observable so the experiments can compare measured work against the theoretical
//! bounds (Theorems 4, 6, 8; Proposition 5; Corollary 9).

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters exposed by the [`crate::SocialStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreMetrics {
    /// Number of `fetch` operations (the quantity bounded by Theorem 8 / Corollary 9 and
    /// plotted in Figure 6).
    pub fetches: u64,
    /// Total number of adjacency entries returned by fetches.
    pub edges_returned: u64,
    /// Number of single-neighbour random samples served without a full fetch (the
    /// Remark 1 variant of the fetch operation).
    pub sampled_neighbor_queries: u64,
    /// Number of edge insertions applied to the store.
    pub edge_insertions: u64,
    /// Number of edge deletions applied to the store.
    pub edge_deletions: u64,
}

/// Generates the atomic counter block mirroring [`StoreMetrics`] from one field
/// list, so snapshot / reset / snapshot-and-reset can never drift out of sync
/// with the struct (the boilerplate they used to duplicate by hand).
///
/// Concurrency contract: every cell is an independent monotone accumulator
/// written with `Relaxed` adds — there is no cross-field invariant, so readers
/// may see a mid-batch mix of fields but never a torn or invented count.
/// `snapshot_and_reset` uses per-field `swap`, which makes each *field's*
/// reset atomic: an increment lands either in the returned snapshot or in the
/// next window, never in both and never lost (a plain load-then-store reset
/// could drop increments that race between the two).
macro_rules! define_atomic_store_metrics {
    ($($field:ident),+ $(,)?) => {
        /// Thread-safe counter block backing [`StoreMetrics`].
        #[derive(Debug, Default)]
        pub(crate) struct AtomicStoreMetrics {
            $(pub $field: AtomicU64,)+
        }

        impl AtomicStoreMetrics {
            pub(crate) fn snapshot(&self) -> StoreMetrics {
                StoreMetrics {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                }
            }

            pub(crate) fn reset(&self) {
                $(self.$field.store(0, Ordering::Relaxed);)+
            }

            /// Atomically (per field) reads and zeroes the counters: the window
            /// boundary of interval-based samplers.  No increment is observable
            /// in both the returned snapshot and the post-reset counters.
            pub(crate) fn snapshot_and_reset(&self) -> StoreMetrics {
                StoreMetrics {
                    $($field: self.$field.swap(0, Ordering::Relaxed),)+
                }
            }
        }
    };
}

define_atomic_store_metrics!(
    fetches,
    edges_returned,
    sampled_neighbor_queries,
    edge_insertions,
    edge_deletions,
);

/// Per-shard write-load counters of a sharded PageRank Store
/// ([`crate::ShardedWalkStore`]), mirroring the per-shard fetch counters the
/// [`crate::SocialStore`] keeps for reads: experiments can verify that the modulo
/// placement spreads reroute work evenly and spot hot shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardLoad {
    /// Segments whose arena slot this shard rewrote (it owns their source node).
    pub segments_rewritten: u64,
    /// Walk steps written into this shard's arena by those rewrites.
    pub steps_written: u64,
    /// Individual `±1` postings updates applied to nodes owned by this shard.
    pub postings_updates: u64,
}

impl ShardLoad {
    /// Adds another shard's totals into this one.
    pub fn merge(&mut self, other: &ShardLoad) {
        self.segments_rewritten += other.segments_rewritten;
        self.steps_written += other.steps_written;
        self.postings_updates += other.postings_updates;
    }
}

/// Accumulator for the update work performed by the incremental engines.
///
/// One unit of `walk_steps` corresponds to one random-walk step re-simulated, which is
/// the unit in which Theorem 4 states its `nR ln m / ε²` bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkCounter {
    /// Number of walk segments that were rerouted or rebuilt.
    pub segments_updated: u64,
    /// Number of random-walk steps executed while rerouting/rebuilding segments.
    pub walk_steps: u64,
    /// Number of edge arrivals processed.
    pub edges_processed: u64,
    /// Number of arrivals that were filtered out without touching the PageRank Store
    /// (the `1 - (1 - 1/d(v))^{W(v)}` pre-check of Section 2.2).
    pub arrivals_filtered: u64,
}

impl WorkCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter's totals into this one.
    pub fn merge(&mut self, other: &WorkCounter) {
        self.segments_updated += other.segments_updated;
        self.walk_steps += other.walk_steps;
        self.edges_processed += other.edges_processed;
        self.arrivals_filtered += other.arrivals_filtered;
    }

    /// Total abstract work: walk steps plus one unit per segment touched.
    pub fn total_work(&self) -> u64 {
        self.walk_steps + self.segments_updated
    }

    /// Average walk steps per processed arrival; zero if nothing was processed.
    pub fn steps_per_edge(&self) -> f64 {
        if self.edges_processed == 0 {
            0.0
        } else {
            self.walk_steps as f64 / self.edges_processed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_snapshot_and_reset() {
        let metrics = AtomicStoreMetrics::default();
        metrics.fetches.fetch_add(3, Ordering::Relaxed);
        metrics.edges_returned.fetch_add(10, Ordering::Relaxed);
        let snap = metrics.snapshot();
        assert_eq!(snap.fetches, 3);
        assert_eq!(snap.edges_returned, 10);
        assert_eq!(snap.edge_insertions, 0);
        metrics.reset();
        assert_eq!(metrics.snapshot(), StoreMetrics::default());
    }

    #[test]
    fn snapshot_and_reset_hands_over_every_count_exactly_once() {
        let metrics = AtomicStoreMetrics::default();
        metrics.fetches.fetch_add(7, Ordering::Relaxed);
        metrics.edge_deletions.fetch_add(2, Ordering::Relaxed);
        let window = metrics.snapshot_and_reset();
        assert_eq!(window.fetches, 7);
        assert_eq!(window.edge_deletions, 2);
        assert_eq!(metrics.snapshot(), StoreMetrics::default());
        metrics.fetches.fetch_add(1, Ordering::Relaxed);
        assert_eq!(metrics.snapshot_and_reset().fetches, 1);
    }

    #[test]
    fn work_counter_merge_and_totals() {
        let mut a = WorkCounter {
            segments_updated: 2,
            walk_steps: 10,
            edges_processed: 4,
            arrivals_filtered: 1,
        };
        let b = WorkCounter {
            segments_updated: 1,
            walk_steps: 5,
            edges_processed: 2,
            arrivals_filtered: 0,
        };
        a.merge(&b);
        assert_eq!(a.segments_updated, 3);
        assert_eq!(a.walk_steps, 15);
        assert_eq!(a.edges_processed, 6);
        assert_eq!(a.arrivals_filtered, 1);
        assert_eq!(a.total_work(), 18);
        assert!((a.steps_per_edge() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn steps_per_edge_handles_zero_edges() {
        assert_eq!(WorkCounter::new().steps_per_edge(), 0.0);
    }
}
