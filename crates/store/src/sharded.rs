//! The sharded PageRank Store: per-shard step arenas and visit postings with a
//! parallel rewrite path.
//!
//! [`ShardedWalkStore`] splits the flat [`StepArena`] and the [`VisitPostings`] of the
//! single-shard [`crate::WalkStore`] into `S` shards keyed by `node_id % S` (the same
//! [`crate::routing::shard_of`] rule the Social Store uses), so shard `σ` owns
//!
//! * the visit postings and `W(v)` counters of every node it owns, and
//! * the arena slots of every segment *rooted* at one of its nodes.
//!
//! Reads ([`crate::WalkIndex`]) route through the owning shard and are otherwise
//! identical to the single-shard store.  The write path is where sharding pays off:
//! [`WalkIndexMut::apply_rewrites`] partitions a whole rewrite plan across shards with
//! `std::thread::scope` — every shard walks the plan once and applies exactly the
//! postings updates of nodes it owns plus the arena writes of segments it owns, so no
//! lock, no atomic, and no cross-thread write is ever needed.  Because each counter and
//! each postings list has a unique owner applying plan entries in plan order, the
//! result is bit-identical to the sequential [`WalkIndexMut::set_segment`] loop at any
//! thread count — the differential test harness in `tests/differential_shard.rs` holds
//! the store to exactly that contract.
//!
//! Per-shard [`ShardLoad`] counters mirror the Social Store's per-shard fetch counters
//! on the write side, so experiments can verify the modulo placement spreads reroute
//! work evenly.

use crate::arena::{ArenaStats, StepArena};
use crate::index::{SegmentRewrites, WalkIndex, WalkIndexMut, WalkIndexView};
use crate::metrics::ShardLoad;
use crate::postings::VisitPostings;
use crate::routing;
use crate::segment::SegmentId;
use ppr_graph::NodeId;
use std::time::{Duration, Instant};

/// One shard: the postings/counters of the nodes it owns and the arena of the segments
/// rooted at them.  All indices are shard-local (see [`crate::routing::local_index`]).
#[derive(Debug, Clone)]
struct WalkShard {
    arena: StepArena,
    postings: Vec<VisitPostings>,
    visit_counts: Vec<u64>,
    total_visits: u64,
    load: ShardLoad,
}

impl WalkShard {
    fn new(local_nodes: usize, r: usize) -> Self {
        WalkShard {
            arena: StepArena::new(local_nodes * r),
            postings: vec![VisitPostings::new(); local_nodes],
            visit_counts: vec![0; local_nodes],
            total_visits: 0,
            load: ShardLoad::default(),
        }
    }

    fn record_visit(&mut self, local: usize, id: SegmentId, change: i32) {
        self.postings[local].record(id, change);
        if change >= 0 {
            self.visit_counts[local] += change as u64;
            self.total_visits += change as u64;
        } else {
            self.visit_counts[local] -= (-change) as u64;
            self.total_visits -= (-change) as u64;
        }
        self.load.postings_updates += 1;
    }

    /// Applies one shard's share of a whole rewrite plan: postings updates for owned
    /// nodes, arena writes for owned segments.  `old` holds the staged pre-plan paths,
    /// sliced by `old_bounds` exactly like the plan's own step buffer.
    fn apply_plan(
        &mut self,
        shard: usize,
        shard_count: usize,
        r: usize,
        rewrites: &SegmentRewrites,
        old_steps: &[NodeId],
        old_bounds: &[usize],
    ) {
        for k in 0..rewrites.len() {
            let (id, new_path) = rewrites.get(k);
            let old_path = &old_steps[old_bounds[k]..old_bounds[k + 1]];
            for &v in old_path {
                if v.index() % shard_count == shard {
                    self.record_visit(v.index() / shard_count, id, -1);
                }
            }
            for &v in new_path {
                if v.index() % shard_count == shard {
                    self.record_visit(v.index() / shard_count, id, 1);
                }
            }
            let source = id.index() / r;
            if source % shard_count == shard {
                let local_slot = (source / shard_count) * r + id.index() % r;
                self.arena.write(local_slot, new_path);
                self.load.segments_rewritten += 1;
                self.load.steps_written += new_path.len() as u64;
            }
        }
    }
}

/// Storage for `R` random-walk segments per node, split into `S` shards by
/// `node_id % S`, with a thread-parallel batched rewrite path.
#[derive(Debug, Clone)]
pub struct ShardedWalkStore {
    r: usize,
    shard_count: usize,
    node_count: usize,
    shards: Vec<WalkShard>,
    /// Reusable staging buffers for `apply_rewrites` (old paths must be captured before
    /// any arena write) and for the sequential `set_segment` path.
    stage_steps: Vec<NodeId>,
    stage_bounds: Vec<usize>,
    /// Wall time each shard spent applying the plans of the most recent
    /// [`WalkIndexMut::apply_rewrites`] call that ran per-shard passes.
    last_apply_times: Vec<Duration>,
}

impl ShardedWalkStore {
    /// Creates an empty store for `node_count` nodes with `r` segments per node, split
    /// over `shard_count` shards.
    pub fn new(node_count: usize, r: usize, shard_count: usize) -> Self {
        assert!(r >= 1, "need at least one walk segment per node");
        assert!(shard_count >= 1, "need at least one shard");
        let shards = (0..shard_count)
            .map(|s| WalkShard::new(routing::shard_len(node_count, shard_count, s), r))
            .collect();
        ShardedWalkStore {
            r,
            shard_count,
            node_count,
            shards,
            stage_steps: Vec::new(),
            stage_bounds: Vec::new(),
            last_apply_times: Vec::new(),
        }
    }

    /// Number of shards the store is split into.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard owning `node`'s postings (and the segments rooted at `node`) — the
    /// same modulo rule as [`crate::SocialStore::shard_of`], via the shared
    /// [`crate::routing::shard_of`] helper.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> usize {
        routing::shard_of(node, self.shard_count)
    }

    /// The shard owning segment `id` (the shard of its source node).
    #[inline]
    pub fn shard_of_segment(&self, id: SegmentId) -> usize {
        (id.index() / self.r) % self.shard_count
    }

    fn local_slot(&self, id: SegmentId) -> usize {
        ((id.index() / self.r) / self.shard_count) * self.r + id.index() % self.r
    }

    /// Per-shard write-load counters since the last reset.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.shards.iter().map(|s| s.load).collect()
    }

    /// Resets the per-shard write-load counters to zero.
    pub fn reset_shard_loads(&mut self) {
        for shard in &mut self.shards {
            shard.load = ShardLoad::default();
        }
    }

    /// Wall time each shard spent on its pass of the most recent
    /// [`WalkIndexMut::apply_rewrites`] call that ran per-shard passes (empty before
    /// the first such call).  On a machine with fewer cores than shards — or with
    /// `threads = 1` — the slowest entry is the phase's critical path: the wall time a
    /// fully parallel deployment would pay.
    pub fn last_apply_shard_times(&self) -> &[Duration] {
        &self.last_apply_times
    }

    /// Per-shard totals of stored visits (each shard counts the visits to the nodes it
    /// owns; the sum over shards is [`WalkIndexView::total_visits`]).
    pub fn shard_visit_totals(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.total_visits).collect()
    }

    /// Aggregated allocation-behaviour counters over all shard arenas.
    pub fn arena_stats(&self) -> ArenaStats {
        let mut total = ArenaStats::default();
        for shard in &self.shards {
            total.merge(&shard.arena.stats());
        }
        total
    }

    /// Sets every shard arena's compaction trigger ratio (see
    /// [`crate::arena::StepArena::set_compaction_threshold`]).
    pub fn set_compaction_threshold(&mut self, ratio: f64) {
        for shard in &mut self.shards {
            shard.arena.set_compaction_threshold(ratio);
        }
    }

    /// Freezes an epoch-pinned, copy-on-write snapshot view of the store (see
    /// [`crate::view::FrozenWalks`]).
    pub fn snapshot_view(&self, epoch: u64) -> crate::view::FrozenWalks {
        crate::view::FrozenWalks::from_index(self, epoch)
    }

    fn assert_valid_path(&self, id: SegmentId, path: &[NodeId]) {
        if let Some(&first) = path.first() {
            let source = id.source(self.r);
            assert_eq!(
                first, source,
                "segment {id:?} must start at its source node {source}"
            );
        }
        for &v in path {
            assert!(
                v.index() < self.node_count,
                "segment visits node {v} outside the store (node_count = {})",
                self.node_count
            );
        }
    }

    fn set_segment_impl(&mut self, id: SegmentId, path: &[NodeId]) {
        self.assert_valid_path(id, path);
        let owner = self.shard_of_segment(id);
        let slot = self.local_slot(id);

        // Stage the old path: its visits live on arbitrary shards, but the slice
        // borrows the owner shard's arena, which is about to be rewritten.
        let mut old = std::mem::take(&mut self.stage_steps);
        old.clear();
        old.extend_from_slice(self.shards[owner].arena.path(slot));
        for &v in &old {
            self.shards[v.index() % self.shard_count].record_visit(
                v.index() / self.shard_count,
                id,
                -1,
            );
        }
        self.stage_steps = old;

        for &v in path {
            self.shards[v.index() % self.shard_count].record_visit(
                v.index() / self.shard_count,
                id,
                1,
            );
        }
        let owner_shard = &mut self.shards[owner];
        owner_shard.arena.write(slot, path);
        owner_shard.load.segments_rewritten += 1;
        owner_shard.load.steps_written += path.len() as u64;
    }

    fn check_consistency_impl(&self) -> Result<(), String> {
        let mut counts = vec![0u64; self.node_count];
        let mut total = 0u64;
        for shard in &self.shards {
            for slot in 0..shard.arena.slot_count() {
                for &v in shard.arena.path(slot) {
                    counts[v.index()] += 1;
                    total += 1;
                }
            }
        }
        if total != self.total_visits() {
            return Err(format!(
                "total_visits is {} but segments hold {total} visits",
                self.total_visits()
            ));
        }
        for (g, &expected) in counts.iter().enumerate() {
            let node = NodeId::from_index(g);
            if self.visit_count(node) != expected {
                return Err(format!(
                    "visit count for node {g} is {}, expected {expected}",
                    self.visit_count(node)
                ));
            }
        }
        for (sid, shard) in self.shards.iter().enumerate() {
            let shard_total: u64 = shard.visit_counts.iter().sum();
            if shard_total != shard.total_visits {
                return Err(format!(
                    "shard {sid} total_visits {} disagrees with its counters ({shard_total})",
                    shard.total_visits
                ));
            }
            for (local, postings) in shard.postings.iter().enumerate() {
                let g = local * self.shard_count + sid;
                if postings.total() != shard.visit_counts[local] {
                    return Err(format!(
                        "postings for node {g} sum to {}, expected {}",
                        postings.total(),
                        shard.visit_counts[local]
                    ));
                }
                // Spot-check each posting against the owning shard's arena.
                for (id, count) in postings.iter() {
                    let actual = self
                        .segment_path(id)
                        .iter()
                        .filter(|&&n| n.index() == g)
                        .count() as u32;
                    if actual != count {
                        return Err(format!(
                            "posting ({id:?}, {count}) at node {g} disagrees with the arena \
                             ({actual})"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl crate::index::WalkIndexView for ShardedWalkStore {
    #[inline]
    fn r(&self) -> usize {
        self.r
    }

    #[inline]
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn segment_path(&self, id: SegmentId) -> &[NodeId] {
        self.shards[self.shard_of_segment(id)]
            .arena
            .path(self.local_slot(id))
    }

    #[inline]
    fn source_of(&self, id: SegmentId) -> NodeId {
        id.source(self.r)
    }

    fn segment_ids_of(&self, node: NodeId) -> impl Iterator<Item = SegmentId> + '_ {
        let r = self.r;
        (0..r).map(move |slot| SegmentId::new(node, slot, r))
    }

    #[inline]
    fn visit_count(&self, node: NodeId) -> u64 {
        self.shards[self.shard_of(node)].visit_counts[routing::local_index(node, self.shard_count)]
    }

    fn visit_counts(&self) -> std::borrow::Cow<'_, [u64]> {
        std::borrow::Cow::Owned(
            (0..self.node_count)
                .map(|g| self.shards[g % self.shard_count].visit_counts[g / self.shard_count])
                .collect(),
        )
    }

    fn total_visits(&self) -> u64 {
        self.shards.iter().map(|s| s.total_visits).sum()
    }
}

impl WalkIndex for ShardedWalkStore {
    fn segments_visiting(&self, node: NodeId) -> impl Iterator<Item = (SegmentId, u32)> + '_ {
        self.shards[self.shard_of(node)].postings[routing::local_index(node, self.shard_count)]
            .iter()
    }

    fn route_shards(&self) -> usize {
        self.shard_count
    }

    fn arena_stats(&self) -> ArenaStats {
        ShardedWalkStore::arena_stats(self)
    }

    fn emit_telemetry(&self, out: &mut ppr_telemetry::SnapshotBuilder) {
        out.source("arena", &ShardedWalkStore::arena_stats(self));
        out.gauge("shards", self.shard_count as f64);
        let mut merged = ShardLoad::default();
        for load in self.shard_loads() {
            merged.merge(&load);
        }
        out.source("shard_load", &merged);
    }
}

impl WalkIndexMut for ShardedWalkStore {
    fn ensure_nodes(&mut self, n: usize) {
        if n <= self.node_count {
            return;
        }
        self.node_count = n;
        for (sid, shard) in self.shards.iter_mut().enumerate() {
            let local = routing::shard_len(n, self.shard_count, sid);
            shard.arena.ensure_slots(local * self.r);
            shard.postings.resize_with(local, VisitPostings::new);
            shard.visit_counts.resize(local, 0);
        }
    }

    fn set_segment(&mut self, id: SegmentId, path: &[NodeId]) {
        self.set_segment_impl(id, path);
    }

    fn clear_segment(&mut self, id: SegmentId) {
        let owner = self.shard_of_segment(id);
        let slot = self.local_slot(id);
        let mut old = std::mem::take(&mut self.stage_steps);
        old.clear();
        old.extend_from_slice(self.shards[owner].arena.path(slot));
        for &v in &old {
            self.shards[v.index() % self.shard_count].record_visit(
                v.index() / self.shard_count,
                id,
                -1,
            );
        }
        self.stage_steps = old;
        self.shards[owner].arena.clear(slot);
    }

    fn check_consistency(&self) -> Result<(), String> {
        self.check_consistency_impl()
    }

    fn last_apply_shard_times(&self) -> &[Duration] {
        &self.last_apply_times
    }

    fn set_compaction_threshold(&mut self, ratio: f64) {
        ShardedWalkStore::set_compaction_threshold(self, ratio);
    }

    /// Applies the plan with up to `threads` worker threads, one pass per shard:
    /// shard `σ` applies exactly the postings updates of its nodes and the arena
    /// writes of its segments, in plan order.  Single-owner writes make the result
    /// bit-identical to the sequential loop at any thread count.
    fn apply_rewrites(&mut self, rewrites: &SegmentRewrites, threads: usize) {
        if rewrites.is_empty() {
            return;
        }
        // The per-shard passes stage every pre-plan path up front, which is only
        // equivalent to the sequential loop when no segment is rewritten twice (the
        // engines' reconciled plans never are); a plan with duplicates falls back.
        let mut seen: std::collections::HashSet<SegmentId> =
            std::collections::HashSet::with_capacity(rewrites.len());
        let distinct = rewrites.iter().all(|(id, _)| seen.insert(id));
        if self.shard_count == 1 || !distinct {
            for (id, path) in rewrites.iter() {
                self.set_segment_impl(id, path);
            }
            return;
        }
        for (id, path) in rewrites.iter() {
            self.assert_valid_path(id, path);
        }

        // Stage every old path before any arena write: the postings removals of a
        // rewrite read the pre-plan path, which other shards must still see after the
        // owner shard has overwritten its slot.
        let mut old_steps = std::mem::take(&mut self.stage_steps);
        let mut old_bounds = std::mem::take(&mut self.stage_bounds);
        old_steps.clear();
        old_bounds.clear();
        old_bounds.push(0);
        for (id, _) in rewrites.iter() {
            old_steps.extend_from_slice(self.segment_path(id));
            old_bounds.push(old_steps.len());
        }

        let shard_count = self.shard_count;
        let r = self.r;
        self.last_apply_times.clear();
        self.last_apply_times.resize(shard_count, Duration::ZERO);
        if threads <= 1 {
            // Same per-shard passes, sequentially; the recorded per-shard times make
            // the parallel critical path measurable even on a single core.
            for (sid, shard) in self.shards.iter_mut().enumerate() {
                let start = Instant::now();
                shard.apply_plan(sid, shard_count, r, rewrites, &old_steps, &old_bounds);
                self.last_apply_times[sid] = start.elapsed();
            }
        } else {
            let workers = threads.min(shard_count);
            let chunk = shard_count.div_ceil(workers);
            let old_steps = &old_steps;
            let old_bounds = &old_bounds;
            std::thread::scope(|scope| {
                for ((ci, shard_chunk), time_chunk) in self
                    .shards
                    .chunks_mut(chunk)
                    .enumerate()
                    .zip(self.last_apply_times.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for ((off, shard), time) in
                            shard_chunk.iter_mut().enumerate().zip(time_chunk)
                        {
                            let start = Instant::now();
                            shard.apply_plan(
                                ci * chunk + off,
                                shard_count,
                                r,
                                rewrites,
                                old_steps,
                                old_bounds,
                            );
                            *time = start.elapsed();
                        }
                    });
                }
            });
        }
        self.stage_steps = old_steps;
        self.stage_bounds = old_bounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walks::WalkStore;

    fn path(nodes: &[u32]) -> Vec<NodeId> {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    /// Asserts a sharded store and a single-shard store hold identical contents.
    fn assert_matches_walk_store(sharded: &ShardedWalkStore, flat: &WalkStore) {
        assert_eq!(
            WalkIndexView::node_count(sharded),
            WalkIndexView::node_count(flat)
        );
        assert_eq!(WalkIndexView::r(sharded), WalkIndexView::r(flat));
        assert_eq!(WalkIndexView::total_visits(sharded), flat.total_visits());
        assert_eq!(WalkIndexView::visit_counts(sharded), flat.visit_counts());
        for g in 0..WalkIndexView::node_count(sharded) {
            let node = NodeId::from_index(g);
            assert_eq!(sharded.visit_count(node), flat.visit_count(node));
            let a: Vec<_> = sharded.segments_visiting(node).collect();
            let b: Vec<_> = flat.segments_visiting(node).collect();
            assert_eq!(a, b, "postings for node {g} diverge");
            for id in flat.segment_ids_of(node) {
                assert_eq!(sharded.segment_path(id), flat.segment_path(id));
            }
        }
        assert!(sharded.check_consistency().is_ok());
        assert!(flat.check_consistency().is_ok());
    }

    #[test]
    fn set_segment_routes_postings_and_arena_to_owners() {
        let mut store = ShardedWalkStore::new(6, 2, 3);
        let id = SegmentId::new(NodeId(4), 1, 2);
        store.set_segment(id, &path(&[4, 1, 2, 1]));
        assert_eq!(store.segment_path(id), path(&[4, 1, 2, 1]).as_slice());
        assert_eq!(store.visit_count(NodeId(1)), 2);
        assert_eq!(store.visit_count(NodeId(4)), 1);
        assert_eq!(store.total_visits(), 4);
        assert_eq!(store.shard_of(NodeId(4)), 1);
        assert_eq!(store.shard_of_segment(id), 1);
        // Shard 1 owns nodes {1, 4}: three of the four visits.
        assert_eq!(store.shard_visit_totals(), vec![0, 3, 1]);
        assert!(store.check_consistency().is_ok());
    }

    #[test]
    fn replacing_and_clearing_segments_stays_consistent_across_shards() {
        let mut store = ShardedWalkStore::new(8, 1, 4);
        let id = SegmentId::new(NodeId(2), 0, 1);
        store.set_segment(id, &path(&[2, 5, 6]));
        store.set_segment(id, &path(&[2, 7]));
        assert_eq!(store.visit_count(NodeId(5)), 0);
        assert_eq!(store.visit_count(NodeId(7)), 1);
        assert_eq!(store.total_visits(), 2);
        store.clear_segment(id);
        assert!(store.segment_is_empty(id));
        assert_eq!(store.total_visits(), 0);
        assert!(store.check_consistency().is_ok());
    }

    #[test]
    fn mirrors_single_shard_store_under_interleaved_writes() {
        let r = 2;
        let n = 10;
        for shard_count in [1usize, 2, 3, 4, 7] {
            let mut sharded = ShardedWalkStore::new(n, r, shard_count);
            let mut flat = WalkStore::new(n, r);
            let writes: &[(u32, usize, &[u32])] = &[
                (0, 0, &[0, 3, 4]),
                (5, 1, &[5, 5, 2, 9]),
                (0, 0, &[0, 1]),
                (9, 0, &[9]),
                (3, 1, &[3, 0, 3, 0]),
                (5, 1, &[]),
            ];
            for &(node, slot, p) in writes {
                let id = SegmentId::new(NodeId(node), slot, r);
                sharded.set_segment(id, &path(p));
                flat.set_segment(id, &path(p));
            }
            assert_matches_walk_store(&sharded, &flat);
        }
    }

    #[test]
    fn parallel_apply_rewrites_is_bit_identical_to_sequential() {
        let r = 3;
        let n = 13;
        let mut plan = SegmentRewrites::new();
        for g in 0..n as u32 {
            for slot in 0..r {
                let id = SegmentId::new(NodeId(g), slot, r);
                let p: Vec<u32> = std::iter::once(g)
                    .chain(
                        (0..(g as usize + slot) % 5)
                            .map(|i| ((g as usize + 3 * i + slot) % n) as u32),
                    )
                    .collect();
                plan.push(id, &path(&p));
            }
        }
        // A second rewrite of an early segment: plan order must be respected.
        plan.push(SegmentId::new(NodeId(0), 0, r), &path(&[0, 12, 12]));

        for shard_count in [2usize, 4, 5] {
            let mut seq = ShardedWalkStore::new(n, r, shard_count);
            let mut par = ShardedWalkStore::new(n, r, shard_count);
            seq.apply_rewrites(&plan, 1);
            for threads in [2usize, 4, 16] {
                let mut fresh = par.clone();
                fresh.apply_rewrites(&plan, threads);
                assert_eq!(fresh.visit_counts(), seq.visit_counts());
                assert_eq!(fresh.total_visits(), seq.total_visits());
                for g in 0..n as u32 {
                    for id in seq.segment_ids_of(NodeId(g)) {
                        assert_eq!(fresh.segment_path(id), seq.segment_path(id));
                    }
                    let a: Vec<_> = fresh.segments_visiting(NodeId(g)).collect();
                    let b: Vec<_> = seq.segments_visiting(NodeId(g)).collect();
                    assert_eq!(a, b);
                }
                assert!(fresh.check_consistency().is_ok());
            }
            par.apply_rewrites(&plan, 4);
            assert_eq!(par.visit_counts(), seq.visit_counts());
        }
    }

    #[test]
    fn ensure_nodes_grows_each_shard() {
        let mut store = ShardedWalkStore::new(3, 2, 2);
        store.ensure_nodes(9);
        assert_eq!(WalkIndexView::node_count(&store), 9);
        let id = SegmentId::new(NodeId(8), 1, 2);
        store.set_segment(id, &path(&[8, 1]));
        assert_eq!(store.visit_count(NodeId(8)), 1);
        store.ensure_nodes(2); // shrinking is a no-op
        assert_eq!(WalkIndexView::node_count(&store), 9);
        assert!(store.check_consistency().is_ok());
    }

    #[test]
    fn shard_loads_split_write_work_by_owner() {
        let mut store = ShardedWalkStore::new(4, 1, 2);
        store.set_segment(SegmentId::new(NodeId(0), 0, 1), &path(&[0, 1, 2]));
        let loads = store.shard_loads();
        // Shard 0 owns the segment (source 0) and nodes {0, 2}; shard 1 owns node 1.
        assert_eq!(loads[0].segments_rewritten, 1);
        assert_eq!(loads[0].steps_written, 3);
        assert_eq!(loads[0].postings_updates, 2);
        assert_eq!(loads[1].segments_rewritten, 0);
        assert_eq!(loads[1].postings_updates, 1);
        store.reset_shard_loads();
        assert!(store
            .shard_loads()
            .iter()
            .all(|l| l == &ShardLoad::default()));
    }

    #[test]
    fn update_probability_matches_single_shard_formula() {
        let mut store = ShardedWalkStore::new(2, 1, 2);
        store.set_segment(SegmentId::new(NodeId(0), 0, 1), &path(&[0, 1, 0, 1, 0]));
        assert!((store.update_probability(NodeId(0), 2) - 0.875).abs() < 1e-12);
        assert_eq!(store.update_probability(NodeId(0), 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must start at its source node")]
    fn segment_must_start_at_source() {
        let mut store = ShardedWalkStore::new(3, 1, 2);
        store.set_segment(SegmentId::new(NodeId(0), 0, 1), &path(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "outside the store")]
    fn segment_cannot_visit_unknown_nodes() {
        let mut store = ShardedWalkStore::new(2, 1, 2);
        store.set_segment(SegmentId::new(NodeId(0), 0, 1), &path(&[0, 5]));
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedWalkStore::new(2, 1, 0);
    }
}
