//! Compact visit postings: which segments visit a node, and how often.
//!
//! The paper's secondary index — "each segment is stored at every node that it passes
//! through" (Section 2.1) — was previously a `HashMap<SegmentId, u32>` per node: an
//! allocation-heavy, cache-hostile layout on the arrival hot path, which scans the
//! postings of the updated node for every edge.  [`VisitPostings`] stores the same
//! multiset as a **sorted run of `(SegmentId, count)` entries** (the CSR idiom: dense,
//! ordered, binary-searchable) plus a **small sorted delta overlay** absorbing recent
//! `±1` updates.  The overlay is merged into the base run lazily, once it grows past a
//! fraction of the base, so a burst of updates to one node costs a handful of shifts in
//! a tiny vector instead of hash-map churn, while reads stream both runs with a linear
//! merge-join.
//!
//! The consuming [`crate::WalkStore`] keeps the exact `W(v)` totals in a separate dense
//! counter array, so postings only need to answer "which segments, with what
//! multiplicity" — never "how many visits in total".

use crate::segment::SegmentId;

/// The delta overlay is merged into the base run when it exceeds
/// `DELTA_MERGE_FLOOR.max(isqrt(base.len()))` entries.  The √B bound balances the two
/// costs a record pays on a node with B base postings: the sorted insert shifts at most
/// √B entries, and the O(B) merge is amortised over the √B records that triggered it —
/// O(√B) per update overall, where a base-proportional threshold would degrade to
/// O(B) insert shifts on hub nodes and a constant threshold to O(B/c) merge copies.
/// The floor stops tiny postings from merging constantly.
const DELTA_MERGE_FLOOR: usize = 16;

/// Sorted postings of the segments visiting one node.
#[derive(Debug, Clone, Default)]
pub struct VisitPostings {
    /// Sorted by `SegmentId`; counts are strictly positive.
    base: Vec<(SegmentId, u32)>,
    /// Sorted by `SegmentId`; signed pending changes, never zero.
    delta: Vec<(SegmentId, i32)>,
}

impl VisitPostings {
    /// Creates empty postings.
    pub fn new() -> Self {
        VisitPostings::default()
    }

    /// Builds postings directly from a finished sorted run (the decode half of a
    /// snapshot round trip: the encode half is [`VisitPostings::iter`], which yields
    /// exactly this run).  The run becomes the base; the delta overlay starts empty.
    ///
    /// Returns an error unless the run is strictly increasing by segment id with all
    /// counts positive — the invariant every merged run maintains.
    pub fn from_sorted_run(run: Vec<(SegmentId, u32)>) -> Result<Self, String> {
        for (i, &(id, count)) in run.iter().enumerate() {
            if count == 0 {
                return Err(format!("posting {id:?} has a zero count"));
            }
            if i > 0 && run[i - 1].0 >= id {
                return Err(format!("postings run not strictly increasing at {id:?}"));
            }
        }
        Ok(VisitPostings {
            base: run,
            delta: Vec::new(),
        })
    }

    /// Records `change` visits of segment `id` (negative to remove visits).
    ///
    /// The update lands in the delta overlay; the overlay is folded into the base run
    /// once it outgrows `DELTA_MERGE_FLOOR.max(isqrt(base.len()))`, keeping every
    /// update O(√base) even on hub nodes visited by millions of segments.
    pub fn record(&mut self, id: SegmentId, change: i32) {
        if change == 0 {
            return;
        }
        match self.delta.binary_search_by_key(&id, |&(d, _)| d) {
            Ok(i) => {
                self.delta[i].1 += change;
                if self.delta[i].1 == 0 {
                    self.delta.remove(i);
                }
            }
            Err(i) => self.delta.insert(i, (id, change)),
        }
        if self.delta.len() > DELTA_MERGE_FLOOR.max(self.base.len().isqrt()) {
            self.merge();
        }
    }

    /// Folds the delta overlay into the base run.
    pub fn merge(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.base.len() + self.delta.len());
        let mut bi = 0usize;
        let mut di = 0usize;
        while bi < self.base.len() || di < self.delta.len() {
            let next_base = self.base.get(bi);
            let next_delta = self.delta.get(di);
            match (next_base, next_delta) {
                (Some(&(b_id, b_count)), Some(&(d_id, d_change))) => {
                    if b_id < d_id {
                        merged.push((b_id, b_count));
                        bi += 1;
                    } else if d_id < b_id {
                        debug_assert!(d_change > 0, "negative count for unseen segment");
                        if d_change > 0 {
                            merged.push((d_id, d_change as u32));
                        }
                        di += 1;
                    } else {
                        let net = b_count as i64 + d_change as i64;
                        debug_assert!(net >= 0, "postings count went negative");
                        if net > 0 {
                            merged.push((b_id, net as u32));
                        }
                        bi += 1;
                        di += 1;
                    }
                }
                (Some(&(b_id, b_count)), None) => {
                    merged.push((b_id, b_count));
                    bi += 1;
                }
                (None, Some(&(d_id, d_change))) => {
                    debug_assert!(d_change > 0, "negative count for unseen segment");
                    if d_change > 0 {
                        merged.push((d_id, d_change as u32));
                    }
                    di += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.base = merged;
        self.delta.clear();
    }

    /// Iterates the postings as `(segment, count)` in increasing segment order,
    /// merge-joining the base run with the delta overlay on the fly.
    pub fn iter(&self) -> PostingsIter<'_> {
        PostingsIter {
            base: &self.base,
            delta: &self.delta,
            bi: 0,
            di: 0,
        }
    }

    /// Number of distinct segments with a positive count.
    pub fn distinct(&self) -> usize {
        self.iter().count()
    }

    /// The visit count of one segment (0 when absent).
    pub fn count_of(&self, id: SegmentId) -> u32 {
        let base = match self.base.binary_search_by_key(&id, |&(b, _)| b) {
            Ok(i) => self.base[i].1 as i64,
            Err(_) => 0,
        };
        let delta = match self.delta.binary_search_by_key(&id, |&(d, _)| d) {
            Ok(i) => self.delta[i].1 as i64,
            Err(_) => 0,
        };
        (base + delta).max(0) as u32
    }

    /// Sum of all counts (the node's `W(v)` as seen by this index).
    pub fn total(&self) -> u64 {
        self.iter().map(|(_, count)| count as u64).sum()
    }

    /// `true` when no segment visits the node.
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }

    /// Entries currently pending in the delta overlay (exposed for tests/benches).
    pub fn pending_delta(&self) -> usize {
        self.delta.len()
    }
}

/// Merge-join iterator over a [`VisitPostings`]' base run and delta overlay.
#[derive(Debug)]
pub struct PostingsIter<'a> {
    base: &'a [(SegmentId, u32)],
    delta: &'a [(SegmentId, i32)],
    bi: usize,
    di: usize,
}

impl Iterator for PostingsIter<'_> {
    type Item = (SegmentId, u32);

    fn next(&mut self) -> Option<(SegmentId, u32)> {
        loop {
            let next_base = self.base.get(self.bi);
            let next_delta = self.delta.get(self.di);
            let (id, net) = match (next_base, next_delta) {
                (Some(&(b_id, b_count)), Some(&(d_id, d_change))) => {
                    if b_id < d_id {
                        self.bi += 1;
                        (b_id, b_count as i64)
                    } else if d_id < b_id {
                        self.di += 1;
                        (d_id, d_change as i64)
                    } else {
                        self.bi += 1;
                        self.di += 1;
                        (b_id, b_count as i64 + d_change as i64)
                    }
                }
                (Some(&(b_id, b_count)), None) => {
                    self.bi += 1;
                    (b_id, b_count as i64)
                }
                (None, Some(&(d_id, d_change))) => {
                    self.di += 1;
                    (d_id, d_change as i64)
                }
                (None, None) => return None,
            };
            if net > 0 {
                return Some((id, net as u32));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(i: u32) -> SegmentId {
        SegmentId(i)
    }

    #[test]
    fn record_and_iterate_in_segment_order() {
        let mut p = VisitPostings::new();
        p.record(seg(5), 2);
        p.record(seg(1), 1);
        p.record(seg(3), 4);
        let collected: Vec<_> = p.iter().collect();
        assert_eq!(collected, vec![(seg(1), 1), (seg(3), 4), (seg(5), 2)]);
        assert_eq!(p.distinct(), 3);
        assert_eq!(p.total(), 7);
        assert_eq!(p.count_of(seg(3)), 4);
        assert_eq!(p.count_of(seg(9)), 0);
    }

    #[test]
    fn negative_records_cancel_positive_ones() {
        let mut p = VisitPostings::new();
        p.record(seg(2), 3);
        p.record(seg(2), -1);
        assert_eq!(p.count_of(seg(2)), 2);
        p.record(seg(2), -2);
        assert_eq!(p.count_of(seg(2)), 0);
        assert!(p.is_empty());
        assert_eq!(p.iter().count(), 0);
    }

    #[test]
    fn overlay_merges_after_enough_updates() {
        let mut p = VisitPostings::new();
        for i in 0..64u32 {
            p.record(seg(i), 1);
        }
        assert!(
            p.pending_delta() <= DELTA_MERGE_FLOOR.max(64 / 4),
            "delta overlay must stay small, has {} entries",
            p.pending_delta()
        );
        // All 64 postings are still visible and correct.
        assert_eq!(p.distinct(), 64);
        for i in 0..64u32 {
            assert_eq!(p.count_of(seg(i)), 1);
        }
    }

    #[test]
    fn explicit_merge_folds_delta_into_base() {
        let mut p = VisitPostings::new();
        p.record(seg(1), 2);
        p.merge();
        p.record(seg(1), -2);
        p.record(seg(0), 5);
        p.merge();
        assert_eq!(p.pending_delta(), 0);
        let collected: Vec<_> = p.iter().collect();
        assert_eq!(collected, vec![(seg(0), 5)]);
    }

    #[test]
    fn interleaved_base_and_delta_reads_are_exact() {
        let mut p = VisitPostings::new();
        // Base run: even segments.
        for i in (0..40u32).step_by(2) {
            p.record(seg(i), 2);
        }
        p.merge();
        // Overlay: odd segments added, some even removed.
        for i in (1..40u32).step_by(4) {
            p.record(seg(i), 1);
        }
        p.record(seg(0), -2);
        p.record(seg(10), -1);
        let collected: Vec<_> = p.iter().collect();
        assert!(collected.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert_eq!(p.count_of(seg(0)), 0);
        assert_eq!(p.count_of(seg(10)), 1);
        assert_eq!(p.count_of(seg(1)), 1);
        assert_eq!(p.count_of(seg(2)), 2);
        let total: u64 = collected.iter().map(|&(_, c)| c as u64).sum();
        assert_eq!(total, p.total());
    }

    #[test]
    fn from_sorted_run_round_trips_iter() {
        let mut p = VisitPostings::new();
        p.record(seg(4), 2);
        p.record(seg(1), 1);
        p.record(seg(9), 7);
        let run: Vec<_> = p.iter().collect();
        let rebuilt = VisitPostings::from_sorted_run(run.clone()).unwrap();
        assert_eq!(rebuilt.iter().collect::<Vec<_>>(), run);
        assert_eq!(rebuilt.total(), p.total());
        assert_eq!(rebuilt.pending_delta(), 0);

        assert!(VisitPostings::from_sorted_run(vec![(seg(1), 0)]).is_err());
        assert!(VisitPostings::from_sorted_run(vec![(seg(2), 1), (seg(2), 1)]).is_err());
        assert!(VisitPostings::from_sorted_run(vec![(seg(3), 1), (seg(1), 1)]).is_err());
    }

    #[test]
    fn zero_change_is_a_noop() {
        let mut p = VisitPostings::new();
        p.record(seg(1), 0);
        assert!(p.is_empty());
        assert_eq!(p.pending_delta(), 0);
    }
}
