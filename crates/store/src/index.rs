//! The store-API layer every engine consumes.
//!
//! [`WalkIndexView`] is the pure *query* surface of the PageRank Store: segment paths
//! and the exact `W(v)` / total-visit counters — everything a read-only consumer (the
//! personalized walker of Algorithm 1, the global estimator, the SALSA hub/authority
//! derivation, the serving layer's pinned snapshots) needs, and nothing more.  Because
//! every method takes `&self` and no method exposes maintenance machinery, a
//! `WalkIndexView` can be a live store *or* a frozen generation snapshot
//! ([`crate::view::FrozenWalks`]): queries written against it run unchanged over
//! either, which is what lets the serving layer answer queries concurrently with
//! writes.
//!
//! [`WalkIndex`] extends the view with the *maintenance* read surface — the visit
//! postings that find the segments an arriving edge can disturb, the shard-routing
//! width, and the arena counters.  The Monte Carlo engines' update paths are written
//! against this trait, so the storage layout can evolve — the flat-arena
//! [`WalkStore`], the sharded [`crate::ShardedWalkStore`], file-backed stores —
//! without touching a single engine.
//!
//! [`WalkIndexMut`] is the matching write surface: growing the node set, rewriting or
//! clearing one segment, and applying a whole [`SegmentRewrites`] plan at once.  The
//! plan-based entry point is what makes parallel maintenance possible: the engines
//! compute every repair against the immutable pre-batch store, then hand the finished
//! plan to the store, which is free to apply it with one thread or many — the result is
//! identical either way.

use crate::segment::SegmentId;
use crate::walks::WalkStore;
use ppr_graph::NodeId;
use std::borrow::Cow;

/// The read-only query surface of a PageRank Store: `R` walk segments per node plus
/// the exact visit counters.  Implemented both by the live stores (through
/// [`WalkIndex`]) and by frozen generation snapshots ([`crate::view::FrozenWalks`]).
pub trait WalkIndexView {
    /// Number of segments stored per node.
    fn r(&self) -> usize;

    /// Number of nodes the store addresses.
    fn node_count(&self) -> usize;

    /// The stored path of segment `id` (empty if not generated yet).
    fn segment_path(&self, id: SegmentId) -> &[NodeId];

    /// The source node of segment `id`.
    fn source_of(&self, id: SegmentId) -> NodeId;

    /// Ids of the `R` segments whose source is `node`.
    fn segment_ids_of(&self, node: NodeId) -> impl Iterator<Item = SegmentId> + '_;

    /// Number of visits in segment `id`.
    fn segment_len(&self, id: SegmentId) -> usize {
        self.segment_path(id).len()
    }

    /// `true` when segment `id` has not been generated yet.
    fn segment_is_empty(&self, id: SegmentId) -> bool {
        self.segment_len(id) == 0
    }

    /// The first visit of segment `id` (its source), if generated.
    fn segment_source(&self, id: SegmentId) -> Option<NodeId> {
        self.segment_path(id).first().copied()
    }

    /// The last visit of segment `id` (where the reset happened), if generated.
    fn segment_last(&self, id: SegmentId) -> Option<NodeId> {
        self.segment_path(id).last().copied()
    }

    /// Positions (indices into the path) at which segment `id` visits `node`, in
    /// increasing order, without allocating.
    fn positions_of(&self, id: SegmentId, node: NodeId) -> impl Iterator<Item = usize> + '_ {
        self.segment_path(id)
            .iter()
            .enumerate()
            .filter_map(move |(i, &v)| (v == node).then_some(i))
    }

    /// The first position at which segment `id` traverses the directed edge
    /// `from -> to`, if any.
    fn first_traversal(&self, id: SegmentId, from: NodeId, to: NodeId) -> Option<usize> {
        self.segment_path(id)
            .windows(2)
            .position(|w| w[0] == from && w[1] == to)
    }

    /// Whether segment `id` traverses the directed edge `from -> to` at any step.
    fn uses_edge(&self, id: SegmentId, from: NodeId, to: NodeId) -> bool {
        self.first_traversal(id, from, to).is_some()
    }

    /// Total walk-segment visits to `node` (the paper's `W(v)` / the estimator's `X_v`).
    fn visit_count(&self, node: NodeId) -> u64;

    /// The full visit-count vector, indexed by node.  Stores that keep the counters
    /// in one flat vector borrow (`Cow::Borrowed`); only stores that stripe them —
    /// per shard, per generation chunk — materialize an owned vector.
    fn visit_counts(&self) -> Cow<'_, [u64]>;

    /// Sum of all visit counts (total stored walk length).
    fn total_visits(&self) -> u64;

    /// The Section 2.2 pre-filter probability `1 - (1 - 1/d)^{W(v)}`.
    fn update_probability(&self, node: NodeId, out_degree: usize) -> f64 {
        if out_degree == 0 {
            return 0.0;
        }
        let w = self.visit_count(node);
        1.0 - (1.0 - 1.0 / out_degree as f64).powi(i32::try_from(w.min(i32::MAX as u64)).unwrap())
    }
}

/// Maintenance-side read access to a PageRank Store: the full query surface of
/// [`WalkIndexView`] plus the visit postings (which segments an update must inspect),
/// shard routing, and arena observability.
pub trait WalkIndex: WalkIndexView {
    /// The segments visiting `node` with their multiplicities, in segment-id order.
    fn segments_visiting(&self, node: NodeId) -> impl Iterator<Item = (SegmentId, u32)> + '_;

    /// Collects the ids of the segments visiting `node` into `out` (cleared first).
    fn collect_visiting(&self, node: NodeId, out: &mut Vec<SegmentId>) {
        out.clear();
        out.extend(self.segments_visiting(node).map(|(id, _)| id));
    }

    /// Number of distinct segments visiting `node`.
    fn distinct_visitors(&self, node: NodeId) -> usize {
        self.segments_visiting(node).count()
    }

    /// Number of shards repair work against this store can be routed over (`1` for the
    /// single-shard [`WalkStore`]).  Engines use this as the partition width of their
    /// parallel reroute fan-out; the answer never affects results, only scheduling.
    fn route_shards(&self) -> usize {
        1
    }

    /// Allocation- and compaction-behaviour counters of the backing step arena(s),
    /// aggregated over shards for sharded layouts.  Observability only — engines use
    /// the deltas to charge compaction pauses to the batch that triggered them.
    fn arena_stats(&self) -> crate::arena::ArenaStats;

    /// Emits this store's observability counters into a telemetry snapshot
    /// builder.  The default covers what every layout has — the arena stats —
    /// under the `arena` segment; layouts with more to say (shard loads,
    /// pager residency, on-disk compaction) override and extend this.
    fn emit_telemetry(&self, out: &mut ppr_telemetry::SnapshotBuilder) {
        out.source("arena", &self.arena_stats());
    }
}

/// A batch of segment rewrites, stored flat: each entry replaces one segment's whole
/// path.  Built by the engines' batched reroute path and consumed by
/// [`WalkIndexMut::apply_rewrites`]; the flat layout (one id vector, one bounds vector,
/// one step buffer) keeps plan construction allocation-free in steady state.
#[derive(Debug)]
pub struct SegmentRewrites {
    ids: Vec<SegmentId>,
    /// `bounds[k]..bounds[k + 1]` is entry `k`'s slice of `steps`.
    bounds: Vec<usize>,
    steps: Vec<NodeId>,
}

impl Clone for SegmentRewrites {
    fn clone(&self) -> Self {
        SegmentRewrites {
            ids: self.ids.clone(),
            bounds: self.bounds.clone(),
            steps: self.steps.clone(),
        }
    }

    /// Buffer-reusing clone: recording a plan into a recycled one is
    /// allocation-free once the target's buffers have grown to steady-state size.
    fn clone_from(&mut self, source: &Self) {
        self.ids.clone_from(&source.ids);
        self.bounds.clone_from(&source.bounds);
        self.steps.clone_from(&source.steps);
    }
}

impl Default for SegmentRewrites {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentRewrites {
    /// Creates an empty plan.
    pub fn new() -> Self {
        SegmentRewrites {
            ids: Vec::new(),
            bounds: vec![0],
            steps: Vec::new(),
        }
    }

    /// Empties the plan, keeping its buffers for reuse.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.bounds.truncate(1);
        self.steps.clear();
    }

    /// Appends one rewrite: segment `id`'s path becomes `path`.
    pub fn push(&mut self, id: SegmentId, path: &[NodeId]) {
        self.ids.push(id);
        self.steps.extend_from_slice(path);
        self.bounds.push(self.steps.len());
    }

    /// Number of rewrites in the plan.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The `k`-th rewrite as `(segment, new path)`.
    pub fn get(&self, k: usize) -> (SegmentId, &[NodeId]) {
        (self.ids[k], &self.steps[self.bounds[k]..self.bounds[k + 1]])
    }

    /// Iterates the rewrites in plan order.
    pub fn iter(&self) -> impl Iterator<Item = (SegmentId, &[NodeId])> + '_ {
        (0..self.len()).map(move |k| self.get(k))
    }
}

/// Write access to a PageRank Store.
///
/// The contract every implementation shares: after any sequence of calls, the visit
/// postings, the `W(v)` counters, and `total_visits` describe exactly the union of the
/// currently stored segment paths ([`WalkIndexMut::check_consistency`] verifies this
/// from scratch).  [`WalkIndexMut::apply_rewrites`] must be observationally equivalent
/// to calling [`WalkIndexMut::set_segment`] for each plan entry in order, for every
/// `threads` value — that equivalence is what lets a sharded store parallelize the
/// apply without the engines caring.
pub trait WalkIndexMut: WalkIndex {
    /// Grows the store to address at least `n` nodes (new nodes start with empty
    /// segments).
    fn ensure_nodes(&mut self, n: usize);

    /// Replaces the path of segment `id`, keeping every index consistent.
    ///
    /// # Panics
    ///
    /// Panics if the new path is non-empty and does not start at the segment's source
    /// node, or if it visits a node outside the store.
    fn set_segment(&mut self, id: SegmentId, path: &[NodeId]);

    /// Clears the segment with the given id (used before regenerating it from scratch).
    fn clear_segment(&mut self, id: SegmentId);

    /// Recomputes the visit index from scratch and compares it against the maintained
    /// counters and postings.
    fn check_consistency(&self) -> Result<(), String>;

    /// Applies a whole rewrite plan, optionally with up to `threads` worker threads.
    /// Must produce exactly the state sequential [`WalkIndexMut::set_segment`] calls
    /// would; the default implementation is that sequential loop.
    fn apply_rewrites(&mut self, rewrites: &SegmentRewrites, threads: usize) {
        let _ = threads;
        for (id, path) in rewrites.iter() {
            self.set_segment(id, path);
        }
    }

    /// Wall time each shard spent on the most recent [`Self::apply_rewrites`] call, if
    /// the store partitions that work per shard (empty for single-shard layouts).
    /// Observability only — never affects results.
    fn last_apply_shard_times(&self) -> &[std::time::Duration] {
        &[]
    }

    /// Sets the backing arena's compaction trigger: relocation garbage above `ratio`
    /// times the live data compacts the arena (see
    /// [`crate::arena::StepArena::set_compaction_threshold`]).  Purely a
    /// space/latency trade — results never depend on it.  Default: no-op, for stores
    /// without a tunable arena.
    fn set_compaction_threshold(&mut self, ratio: f64) {
        let _ = ratio;
    }
}

impl WalkIndexView for WalkStore {
    #[inline]
    fn r(&self) -> usize {
        WalkStore::r(self)
    }

    #[inline]
    fn node_count(&self) -> usize {
        WalkStore::node_count(self)
    }

    #[inline]
    fn segment_path(&self, id: SegmentId) -> &[NodeId] {
        WalkStore::segment_path(self, id)
    }

    #[inline]
    fn source_of(&self, id: SegmentId) -> NodeId {
        WalkStore::source_of(self, id)
    }

    fn segment_ids_of(&self, node: NodeId) -> impl Iterator<Item = SegmentId> + '_ {
        WalkStore::segment_ids_of(self, node)
    }

    #[inline]
    fn segment_len(&self, id: SegmentId) -> usize {
        WalkStore::segment_len(self, id)
    }

    #[inline]
    fn visit_count(&self, node: NodeId) -> u64 {
        WalkStore::visit_count(self, node)
    }

    fn visit_counts(&self) -> Cow<'_, [u64]> {
        Cow::Borrowed(WalkStore::visit_counts(self))
    }

    #[inline]
    fn total_visits(&self) -> u64 {
        WalkStore::total_visits(self)
    }

    fn update_probability(&self, node: NodeId, out_degree: usize) -> f64 {
        WalkStore::update_probability(self, node, out_degree)
    }
}

impl WalkIndex for WalkStore {
    fn segments_visiting(&self, node: NodeId) -> impl Iterator<Item = (SegmentId, u32)> + '_ {
        WalkStore::segments_visiting(self, node)
    }

    fn arena_stats(&self) -> crate::arena::ArenaStats {
        WalkStore::arena_stats(self)
    }
}

impl WalkIndexMut for WalkStore {
    fn ensure_nodes(&mut self, n: usize) {
        WalkStore::ensure_nodes(self, n);
    }

    fn set_segment(&mut self, id: SegmentId, path: &[NodeId]) {
        WalkStore::set_segment(self, id, path);
    }

    fn clear_segment(&mut self, id: SegmentId) {
        WalkStore::clear_segment(self, id);
    }

    fn check_consistency(&self) -> Result<(), String> {
        WalkStore::check_consistency(self)
    }

    fn set_compaction_threshold(&mut self, ratio: f64) {
        WalkStore::set_compaction_threshold(self, ratio);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A consumer written purely against the trait, as the estimator is.
    fn total_via_trait<W: WalkIndex>(index: &W) -> u64 {
        (0..index.node_count())
            .map(|v| index.visit_count(NodeId::from_index(v)))
            .sum()
    }

    #[test]
    fn walk_store_implements_the_full_surface() {
        let mut store = WalkStore::new(4, 2);
        let id = SegmentId::new(NodeId(1), 0, 2);
        store.set_segment(id, &[NodeId(1), NodeId(2), NodeId(2)]);

        assert_eq!(total_via_trait(&store), 3);
        assert_eq!(WalkIndexView::r(&store), 2);
        assert_eq!(WalkIndexView::node_count(&store), 4);
        assert_eq!(
            WalkIndexView::segment_path(&store, id),
            &[NodeId(1), NodeId(2), NodeId(2)]
        );
        assert_eq!(WalkIndexView::source_of(&store, id), NodeId(1));
        assert_eq!(WalkIndexView::segment_ids_of(&store, NodeId(1)).count(), 2);
        assert_eq!(
            WalkIndex::segments_visiting(&store, NodeId(2)).collect::<Vec<_>>(),
            vec![(id, 2)]
        );
        let mut buf = Vec::new();
        WalkIndex::collect_visiting(&store, NodeId(2), &mut buf);
        assert_eq!(buf, vec![id]);
        assert_eq!(WalkIndex::distinct_visitors(&store, NodeId(2)), 1);
        assert_eq!(WalkIndexView::visit_count(&store, NodeId(2)), 2);
        assert_eq!(WalkIndexView::visit_counts(&store), vec![0, 1, 2, 0]);
        assert_eq!(WalkIndexView::total_visits(&store), 3);
        let p = WalkIndexView::update_probability(&store, NodeId(2), 2);
        assert!((p - 0.75).abs() < 1e-12);
        assert_eq!(WalkIndexView::update_probability(&store, NodeId(2), 0), 0.0);
        assert_eq!(WalkIndex::route_shards(&store), 1);
    }

    #[test]
    fn default_path_helpers_read_through_segment_path() {
        let mut store = WalkStore::new(4, 1);
        let id = SegmentId::new(NodeId(0), 0, 1);
        store.set_segment(id, &[NodeId(0), NodeId(1), NodeId(2), NodeId(1)]);
        assert_eq!(WalkIndexView::segment_len(&store, id), 4);
        assert!(!WalkIndexView::segment_is_empty(&store, id));
        assert_eq!(WalkIndexView::segment_source(&store, id), Some(NodeId(0)));
        assert_eq!(WalkIndexView::segment_last(&store, id), Some(NodeId(1)));
        assert_eq!(
            WalkIndexView::positions_of(&store, id, NodeId(1)).collect::<Vec<_>>(),
            [1, 3]
        );
        assert_eq!(
            WalkIndexView::first_traversal(&store, id, NodeId(2), NodeId(1)),
            Some(2)
        );
        assert!(WalkIndexView::uses_edge(&store, id, NodeId(1), NodeId(2)));
        assert!(!WalkIndexView::uses_edge(&store, id, NodeId(2), NodeId(0)));
    }

    #[test]
    fn rewrite_plan_roundtrips_and_reuses_buffers() {
        let mut plan = SegmentRewrites::new();
        assert!(plan.is_empty());
        plan.push(SegmentId(3), &[NodeId(1), NodeId(2)]);
        plan.push(SegmentId(0), &[]);
        plan.push(SegmentId(7), &[NodeId(4)]);
        assert_eq!(plan.len(), 3);
        let collected: Vec<(SegmentId, Vec<NodeId>)> =
            plan.iter().map(|(id, path)| (id, path.to_vec())).collect();
        assert_eq!(
            collected,
            vec![
                (SegmentId(3), vec![NodeId(1), NodeId(2)]),
                (SegmentId(0), vec![]),
                (SegmentId(7), vec![NodeId(4)]),
            ]
        );
        plan.clear();
        assert!(plan.is_empty());
        plan.push(SegmentId(1), &[NodeId(0)]);
        assert_eq!(plan.get(0), (SegmentId(1), &[NodeId(0)][..]));
    }

    #[test]
    fn default_apply_rewrites_equals_sequential_set_segment() {
        let mut plan = SegmentRewrites::new();
        plan.push(SegmentId::new(NodeId(0), 0, 1), &[NodeId(0), NodeId(1)]);
        plan.push(SegmentId::new(NodeId(2), 0, 1), &[NodeId(2), NodeId(1)]);
        // The same segment twice: later entries win, exactly as sequential calls would.
        plan.push(SegmentId::new(NodeId(0), 0, 1), &[NodeId(0), NodeId(2)]);

        let mut via_plan = WalkStore::new(3, 1);
        via_plan.apply_rewrites(&plan, 8);
        let mut via_calls = WalkStore::new(3, 1);
        for (id, path) in plan.iter() {
            WalkIndexMut::set_segment(&mut via_calls, id, path);
        }
        assert_eq!(via_plan.visit_counts(), via_calls.visit_counts());
        assert_eq!(via_plan.total_visits(), via_calls.total_visits());
        assert_eq!(
            WalkIndexView::segment_path(&via_plan, SegmentId::new(NodeId(0), 0, 1)),
            &[NodeId(0), NodeId(2)]
        );
        assert!(via_plan.check_consistency().is_ok());
    }
}
