//! The store-API layer every engine consumes.
//!
//! [`WalkIndex`] is the read surface of the PageRank Store: segment paths, per-node
//! visit postings, and the exact `W(v)` / total-visit counters.  The Monte Carlo
//! engines, the personalized walker of Algorithm 1, and the global estimator are all
//! written against this trait, so the storage layout ([`crate::arena`] +
//! [`crate::postings`] today) can evolve — sharded stores, mmap-backed arenas — without
//! touching a single engine.

use crate::segment::SegmentId;
use crate::walks::WalkStore;
use ppr_graph::NodeId;

/// Read access to a PageRank Store: `R` walk segments per node plus the visit index.
pub trait WalkIndex {
    /// Number of segments stored per node.
    fn r(&self) -> usize;

    /// Number of nodes the store addresses.
    fn node_count(&self) -> usize;

    /// The stored path of segment `id` (empty if not generated yet).
    fn segment_path(&self, id: SegmentId) -> &[NodeId];

    /// The source node of segment `id`.
    fn source_of(&self, id: SegmentId) -> NodeId;

    /// Ids of the `R` segments whose source is `node`.
    fn segment_ids_of(&self, node: NodeId) -> impl Iterator<Item = SegmentId> + '_;

    /// The segments visiting `node` with their multiplicities, in segment-id order.
    fn segments_visiting(&self, node: NodeId) -> impl Iterator<Item = (SegmentId, u32)> + '_;

    /// Collects the ids of the segments visiting `node` into `out` (cleared first).
    fn collect_visiting(&self, node: NodeId, out: &mut Vec<SegmentId>) {
        out.clear();
        out.extend(self.segments_visiting(node).map(|(id, _)| id));
    }

    /// Number of distinct segments visiting `node`.
    fn distinct_visitors(&self, node: NodeId) -> usize {
        self.segments_visiting(node).count()
    }

    /// Total walk-segment visits to `node` (the paper's `W(v)` / the estimator's `X_v`).
    fn visit_count(&self, node: NodeId) -> u64;

    /// The full visit-count vector, indexed by node.
    fn visit_counts(&self) -> &[u64];

    /// Sum of all visit counts (total stored walk length).
    fn total_visits(&self) -> u64;

    /// The Section 2.2 pre-filter probability `1 - (1 - 1/d)^{W(v)}`.
    fn update_probability(&self, node: NodeId, out_degree: usize) -> f64;
}

impl WalkIndex for WalkStore {
    #[inline]
    fn r(&self) -> usize {
        WalkStore::r(self)
    }

    #[inline]
    fn node_count(&self) -> usize {
        WalkStore::node_count(self)
    }

    #[inline]
    fn segment_path(&self, id: SegmentId) -> &[NodeId] {
        WalkStore::segment_path(self, id)
    }

    #[inline]
    fn source_of(&self, id: SegmentId) -> NodeId {
        WalkStore::source_of(self, id)
    }

    fn segment_ids_of(&self, node: NodeId) -> impl Iterator<Item = SegmentId> + '_ {
        WalkStore::segment_ids_of(self, node)
    }

    fn segments_visiting(&self, node: NodeId) -> impl Iterator<Item = (SegmentId, u32)> + '_ {
        WalkStore::segments_visiting(self, node)
    }

    #[inline]
    fn visit_count(&self, node: NodeId) -> u64 {
        WalkStore::visit_count(self, node)
    }

    #[inline]
    fn visit_counts(&self) -> &[u64] {
        WalkStore::visit_counts(self)
    }

    #[inline]
    fn total_visits(&self) -> u64 {
        WalkStore::total_visits(self)
    }

    fn update_probability(&self, node: NodeId, out_degree: usize) -> f64 {
        WalkStore::update_probability(self, node, out_degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A consumer written purely against the trait, as the estimator is.
    fn total_via_trait<W: WalkIndex>(index: &W) -> u64 {
        (0..index.node_count())
            .map(|v| index.visit_count(NodeId::from_index(v)))
            .sum()
    }

    #[test]
    fn walk_store_implements_the_full_surface() {
        let mut store = WalkStore::new(4, 2);
        let id = SegmentId::new(NodeId(1), 0, 2);
        store.set_segment(id, &[NodeId(1), NodeId(2), NodeId(2)]);

        assert_eq!(total_via_trait(&store), 3);
        assert_eq!(WalkIndex::r(&store), 2);
        assert_eq!(WalkIndex::node_count(&store), 4);
        assert_eq!(
            WalkIndex::segment_path(&store, id),
            &[NodeId(1), NodeId(2), NodeId(2)]
        );
        assert_eq!(WalkIndex::source_of(&store, id), NodeId(1));
        assert_eq!(WalkIndex::segment_ids_of(&store, NodeId(1)).count(), 2);
        assert_eq!(
            WalkIndex::segments_visiting(&store, NodeId(2)).collect::<Vec<_>>(),
            vec![(id, 2)]
        );
        let mut buf = Vec::new();
        WalkIndex::collect_visiting(&store, NodeId(2), &mut buf);
        assert_eq!(buf, vec![id]);
        assert_eq!(WalkIndex::distinct_visitors(&store, NodeId(2)), 1);
        assert_eq!(WalkIndex::visit_count(&store, NodeId(2)), 2);
        assert_eq!(WalkIndex::visit_counts(&store), &[0, 1, 2, 0]);
        assert_eq!(WalkIndex::total_visits(&store), 3);
        let p = WalkIndex::update_probability(&store, NodeId(2), 2);
        assert!((p - 0.75).abs() < 1e-12);
        assert_eq!(WalkIndex::update_probability(&store, NodeId(2), 0), 0.0);
    }
}
