//! Walk segments and their identifiers.
//!
//! A *walk segment* is one "continuous session by a random surfer" (Section 1.1): a
//! random walk started at its source node and continued until its first reset.  The
//! PageRank Store keeps `R` such segments per node; the global estimator only needs
//! their visit counts, while the personalized walker (Algorithm 1) consumes entire
//! segments.

use ppr_graph::NodeId;

/// Identifier of a walk segment in a [`crate::WalkStore`].
///
/// Segments are stored in a flat array with `R` consecutive slots per node, so the id is
/// simply the flat index `node_index * R + slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// Builds the id of the `slot`-th segment of `node` when `r` segments are stored per
    /// node.
    #[inline]
    pub fn new(node: NodeId, slot: usize, r: usize) -> Self {
        debug_assert!(slot < r, "slot {slot} out of range for R = {r}");
        SegmentId((node.index() * r + slot) as u32)
    }

    /// The flat index of this segment.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The node this segment starts at, given `r` segments per node.
    #[inline]
    pub fn source(self, r: usize) -> NodeId {
        NodeId::from_index(self.index() / r)
    }

    /// The slot (0-based) of this segment among its source's segments.
    #[inline]
    pub fn slot(self, r: usize) -> usize {
        self.index() % r
    }
}

/// One cached random-walk segment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalkSegment {
    path: Vec<NodeId>,
}

impl WalkSegment {
    /// Creates a segment from its visited path.  The path must start at the segment's
    /// source node; an empty path denotes a segment that has not been generated yet.
    pub fn new(path: Vec<NodeId>) -> Self {
        WalkSegment { path }
    }

    /// The full visited path, starting at the source node.
    #[inline]
    pub fn path(&self) -> &[NodeId] {
        &self.path
    }

    /// Number of node visits in the segment (the contribution to `X_v` counters).
    #[inline]
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// `true` if the segment has not been generated yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// The node the segment starts at, if generated.
    #[inline]
    pub fn source(&self) -> Option<NodeId> {
        self.path.first().copied()
    }

    /// The last node of the segment (where the reset happened), if generated.
    #[inline]
    pub fn last(&self) -> Option<NodeId> {
        self.path.last().copied()
    }

    /// Positions (indices into the path) at which the segment visits `node`.
    pub fn positions_of(&self, node: NodeId) -> Vec<usize> {
        self.path
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| (v == node).then_some(i))
            .collect()
    }

    /// Whether the segment traverses the directed edge `from -> to` at any step.
    pub fn uses_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.path.windows(2).any(|w| w[0] == from && w[1] == to)
    }

    /// Consumes the segment and returns the owned path.
    pub fn into_path(self) -> Vec<NodeId> {
        self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(nodes: &[u32]) -> WalkSegment {
        WalkSegment::new(nodes.iter().map(|&n| NodeId(n)).collect())
    }

    #[test]
    fn segment_id_roundtrip() {
        let r = 4;
        for node in 0..10u32 {
            for slot in 0..r {
                let id = SegmentId::new(NodeId(node), slot, r);
                assert_eq!(id.source(r), NodeId(node));
                assert_eq!(id.slot(r), slot);
            }
        }
    }

    #[test]
    fn segment_ids_are_dense_and_unique() {
        let r = 3;
        let mut seen = std::collections::HashSet::new();
        for node in 0..5u32 {
            for slot in 0..r {
                assert!(seen.insert(SegmentId::new(NodeId(node), slot, r)));
            }
        }
        assert_eq!(seen.len(), 15);
        let max = seen.iter().map(|s| s.index()).max().unwrap();
        assert_eq!(max, 14);
    }

    #[test]
    fn path_accessors() {
        let s = seg(&[3, 1, 4, 1, 5]);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.source(), Some(NodeId(3)));
        assert_eq!(s.last(), Some(NodeId(5)));
        assert_eq!(s.positions_of(NodeId(1)), vec![1, 3]);
        assert_eq!(s.positions_of(NodeId(9)), Vec::<usize>::new());
    }

    #[test]
    fn uses_edge_detects_consecutive_pairs_only() {
        let s = seg(&[0, 1, 2, 1]);
        assert!(s.uses_edge(NodeId(0), NodeId(1)));
        assert!(s.uses_edge(NodeId(2), NodeId(1)));
        assert!(!s.uses_edge(NodeId(1), NodeId(0)));
        assert!(!s.uses_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn empty_segment_behaviour() {
        let s = WalkSegment::default();
        assert!(s.is_empty());
        assert_eq!(s.source(), None);
        assert_eq!(s.last(), None);
        assert!(!s.uses_edge(NodeId(0), NodeId(1)));
        assert_eq!(s.into_path(), Vec::<NodeId>::new());
    }
}
