//! Walk-segment identifiers.
//!
//! A *walk segment* is one "continuous session by a random surfer" (Section 1.1): a
//! random walk started at its source node and continued until its first reset.  The
//! PageRank Store keeps `R` such segments per node.  Segment *paths* live in the store's
//! flat step arena (see [`crate::arena`]); this module only defines their identifier.

use ppr_graph::NodeId;

/// Identifier of a walk segment in a [`crate::WalkStore`].
///
/// Segments are stored in a flat array with `R` consecutive slots per node, so the id is
/// simply the flat index `node_index * R + slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// Builds the id of the `slot`-th segment of `node` when `r` segments are stored per
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= r`, or if `node_index * r + slot` does not fit the `u32` id
    /// space (a store of more than `2^32 / R` nodes) — silently truncating the id would
    /// alias two different segments and corrupt the visit index.
    #[inline]
    pub fn new(node: NodeId, slot: usize, r: usize) -> Self {
        assert!(slot < r, "slot {slot} out of range for R = {r}");
        let index = node
            .index()
            .checked_mul(r)
            .and_then(|base| base.checked_add(slot))
            .filter(|&flat| flat <= u32::MAX as usize)
            .unwrap_or_else(|| {
                panic!(
                    "segment id overflow: node {node} with R = {r} exceeds the u32 id space \
                     (max addressable node index is {})",
                    (u32::MAX as usize - slot) / r
                )
            });
        SegmentId(index as u32)
    }

    /// The flat index of this segment.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The node this segment starts at, given `r` segments per node.
    #[inline]
    pub fn source(self, r: usize) -> NodeId {
        NodeId::from_index(self.index() / r)
    }

    /// The slot (0-based) of this segment among its source's segments.
    #[inline]
    pub fn slot(self, r: usize) -> usize {
        self.index() % r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_id_roundtrip() {
        let r = 4;
        for node in 0..10u32 {
            for slot in 0..r {
                let id = SegmentId::new(NodeId(node), slot, r);
                assert_eq!(id.source(r), NodeId(node));
                assert_eq!(id.slot(r), slot);
            }
        }
    }

    #[test]
    fn segment_ids_are_dense_and_unique() {
        let r = 3;
        let mut seen = std::collections::HashSet::new();
        for node in 0..5u32 {
            for slot in 0..r {
                assert!(seen.insert(SegmentId::new(NodeId(node), slot, r)));
            }
        }
        assert_eq!(seen.len(), 15);
        let max = seen.iter().map(|s| s.index()).max().unwrap();
        assert_eq!(max, 14);
    }

    #[test]
    fn ids_near_the_u32_boundary_are_still_exact() {
        let r = 2;
        let max_node = (u32::MAX as usize - (r - 1)) / r;
        let id = SegmentId::new(NodeId::from_index(max_node), r - 1, r);
        assert_eq!(id.source(r), NodeId::from_index(max_node));
        assert_eq!(id.slot(r), r - 1);
    }

    #[test]
    #[should_panic(expected = "segment id overflow")]
    fn overflowing_the_u32_id_space_panics_instead_of_truncating() {
        // Regression: `(node.index() * r + slot) as u32` used to truncate silently,
        // aliasing two different segments once node_count * R crossed 2^32.
        let r = 1_000;
        let _ = SegmentId::new(NodeId::from_index(u32::MAX as usize / 2), 0, r);
    }

    #[test]
    #[should_panic(expected = "out of range for R")]
    fn slot_must_be_below_r() {
        let _ = SegmentId::new(NodeId(0), 3, 3);
    }
}
