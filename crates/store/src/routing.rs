//! Shard placement shared by every sharded store.
//!
//! Both the Social Store (the distributed graph) and the sharded PageRank Store
//! ([`crate::ShardedWalkStore`]) place a node by the same rule, so an arrival group for
//! source `u` is routed to the shard that owns both `u`'s adjacency *and* `u`'s visit
//! postings.  Keeping the rule in one place is load-bearing: if the two stores ever
//! disagreed on a node's shard, the parallel reroute path would scan one shard's
//! postings while writing another shard's arena.

use ppr_graph::NodeId;

/// The shard a node lives on: simple modulo placement over `shard_count` shards.
///
/// # Panics
///
/// Panics if `shard_count` is zero.
#[inline]
pub fn shard_of(node: NodeId, shard_count: usize) -> usize {
    assert!(shard_count >= 1, "need at least one shard");
    node.index() % shard_count
}

/// The index of `node` within its shard's dense local arrays: the `i`-th node placed on
/// a shard gets local index `i`.
#[inline]
pub fn local_index(node: NodeId, shard_count: usize) -> usize {
    debug_assert!(shard_count >= 1);
    node.index() / shard_count
}

/// Number of nodes out of a store of `node_count` nodes that land on shard `shard`.
#[inline]
pub fn shard_len(node_count: usize, shard_count: usize, shard: usize) -> usize {
    debug_assert!(shard < shard_count);
    (node_count + shard_count - 1 - shard) / shard_count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_placement_round_trips_through_local_indices() {
        for shard_count in 1..6usize {
            let mut seen = vec![0usize; shard_count];
            for g in 0..40u32 {
                let node = NodeId(g);
                let shard = shard_of(node, shard_count);
                let local = local_index(node, shard_count);
                assert_eq!(shard, g as usize % shard_count);
                assert_eq!(local, seen[shard], "local indices are dense per shard");
                seen[shard] += 1;
            }
            for (shard, &count) in seen.iter().enumerate() {
                assert_eq!(shard_len(40, shard_count, shard), count);
            }
        }
    }

    #[test]
    fn shard_len_covers_every_node_exactly_once() {
        for node_count in [0usize, 1, 5, 17, 64] {
            for shard_count in 1..8usize {
                let total: usize = (0..shard_count)
                    .map(|s| shard_len(node_count, shard_count, s))
                    .sum();
                assert_eq!(total, node_count);
            }
        }
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let _ = shard_of(NodeId(0), 0);
    }
}
