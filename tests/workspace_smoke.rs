//! Smoke tests for the workspace surface itself: every `fast_ppr::prelude` re-export
//! must resolve and compose, and the README/`src/lib.rs` quickstart must run end to end
//! on a 1k-node preferential-attachment graph.

use fast_ppr::prelude::*;
use std::collections::HashSet;

/// The quickstart from the façade's crate-level docs (and the README), verbatim in
/// spirit: build a graph, maintain walk segments, read global scores, query top-k.
#[test]
fn quickstart_runs_end_to_end_on_a_1k_node_graph() {
    let graph = preferential_attachment(1_000, 5, 42);
    assert_eq!(graph.node_count(), 1_000);

    let config = MonteCarloConfig::new(0.2, 4).with_seed(7);
    let mut engine = IncrementalPageRank::from_graph(&graph, config);

    let scores = engine.scores();
    assert_eq!(scores.len(), graph.node_count());
    let sum: f64 = scores.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9, "scores sum to {sum}, expected 1");

    let top = engine.personalized_top_k(NodeId(0), 10, 2_000);
    assert!(top.len() <= 10);
    assert!(top
        .iter()
        .all(|&(node, score)| { node.index() < graph.node_count() && score > 0.0 }));

    // The engine stays live: an arriving edge is absorbed without invalidating state.
    engine.add_edge(Edge::new(999, 0));
    engine
        .validate_segments()
        .expect("segments stay valid after an arrival");
}

/// Every item the prelude re-exports is usable from a single `use fast_ppr::prelude::*`
/// (this is a compile-surface test as much as a runtime one).
#[test]
fn every_prelude_reexport_resolves_and_composes() {
    // ppr_graph: DynamicGraph, GraphView, NodeId, Edge, generators.  The prelude's
    // `Edge` must be the same type the `fast_ppr::graph` module re-export exposes.
    let mut dynamic = DynamicGraph::with_nodes(50);
    for i in 1..50u32 {
        let edge: fast_ppr::graph::Edge = Edge::new(i, i / 2);
        dynamic.add_edge(edge);
    }
    assert_eq!(GraphView::node_count(&dynamic), 50);

    let graph = preferential_attachment(200, 4, 11);

    // ppr_core: MonteCarloConfig, IncrementalPageRank, IncrementalSalsa,
    // PersonalizedWalker.
    let config = MonteCarloConfig::new(0.25, 3).with_seed(13);
    let engine = IncrementalPageRank::from_graph(&graph, config);
    let salsa = IncrementalSalsa::from_graph(&graph, config);
    assert_eq!(salsa.estimates().authorities.len(), 200);

    let mut walker = PersonalizedWalker::new(engine.social_store(), engine.walk_store(), 0.25, 17);
    let result = walker.walk(NodeId(0), 500);
    assert!(result.total_visits >= 500);
    assert!(result.fetches > 0);

    // ppr_store: SocialStore, WalkStore.
    let store = SocialStore::new(10, 2);
    assert_eq!(store.node_count(), 10);
    let walks = WalkStore::new(10, 2);
    assert_eq!(walks.r(), 2);

    // ppr_baselines: power_iteration, personalized_power_iteration, hits,
    // personalized_hits, salsa_exact.
    let exact = power_iteration(
        &graph,
        &ppr_baselines::power_iteration::PowerIterationConfig::with_epsilon(0.25),
    );
    let personalized = personalized_power_iteration(
        &graph,
        NodeId(5),
        &ppr_baselines::power_iteration::PowerIterationConfig::with_epsilon(0.25),
    );
    assert_eq!(exact.scores.len(), personalized.scores.len());
    let hub_auth = hits(&graph, 20);
    let p_hits = personalized_hits(&graph, NodeId(5), 0.25, 20);
    assert_eq!(hub_auth.authorities.len(), p_hits.authorities.len());
    let exact_salsa = salsa_exact(&graph, 20);
    assert_eq!(exact_salsa.authorities.len(), 200);

    // ppr_analysis: fit_power_law, interpolated_average_precision.
    let fit = fit_power_law(&exact.scores, 1..100).expect("enough ranked scores");
    assert!(fit.exponent.is_finite());
    let relevant: HashSet<usize> = [1, 2, 3].into_iter().collect();
    let ap = interpolated_average_precision(&[1, 2, 3], &relevant);
    assert!((ap - 1.0).abs() < 1e-12);
}
