//! Differential harness for snapshot-isolated serving: N reader threads issue
//! queries while a writer commits arrival/deletion batches, and every observation
//! must be explainable by exactly one committed generation.
//!
//! This extends the PR 3/PR 4 differential discipline to the read path.  The oracle
//! has three prongs:
//!
//! 1. **Generation fidelity (no torn reads).**  Every generation the writer
//!    published is compared, byte for byte (segment paths, visit counters, both
//!    adjacency directions), against a from-scratch freeze of a reference engine
//!    that replayed exactly the first `epoch` batches single-threaded.  A reader
//!    pinning a generation therefore sees one committed state — never a mix of two
//!    batches, never a half-applied plan, never a chunk the writer mutated in
//!    place.
//! 2. **Replay equality.**  Every query answered *concurrently* with the write
//!    stream — whatever thread served it, whatever commit it overlapped — must
//!    equal the same `(query_seed, query_id)` query replayed against its pinned
//!    generation on a single thread after the fact.
//! 3. **Thread-count invariance.**  The same query batch served through reader
//!    pools of 1 and of `PPR_TEST_THREADS` (or 4) threads produces bit-identical
//!    answers.
//!
//! Together these are the acceptance contract: queries are `&self` on the hot path
//! and bit-identical for a fixed `(query_seed, query_id)` at any reader-thread
//! count and any read/write interleaving.

use fast_ppr::prelude::*;
use fast_ppr::serve::{Answer, PinnedView, Query, QueryBatch, ServeEngine, Served};
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_graph::stream::random_permutation;
use ppr_graph::Edge;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

const NODES: usize = 130;
const QUERY_SEED: u64 = 0xC0FFEE;

/// Reader-thread counts to exercise: `PPR_TEST_THREADS` pins one (the CI matrix).
fn thread_counts() -> Vec<usize> {
    match std::env::var("PPR_TEST_THREADS") {
        Ok(v) => vec![v
            .trim()
            .parse()
            .expect("PPR_TEST_THREADS must be a positive integer")],
        Err(_) => vec![1, 4],
    }
}

/// One write op of the committed schedule.
#[derive(Debug, Clone)]
enum Op {
    Arrive(Vec<Edge>),
    Delete(Vec<Edge>),
}

fn schedule(seed: u64) -> Vec<Op> {
    let pa = PreferentialAttachmentConfig::new(NODES, 4, seed);
    let edges = random_permutation(&preferential_attachment_edges(&pa), seed ^ 0xfeed);
    let mut ops = Vec::new();
    let mut start = 0usize;
    for &len in [9usize, 40, 1, 64, 17].iter().cycle() {
        if start >= edges.len() {
            break;
        }
        let end = (start + len).min(edges.len());
        ops.push(Op::Arrive(edges[start..end].to_vec()));
        if ops.len() % 3 == 0 {
            let victims: Vec<Edge> = edges[..end].iter().copied().step_by(11).take(6).collect();
            ops.push(Op::Delete(victims));
        }
        start = end;
    }
    ops
}

fn query_for(qid: u64) -> Query {
    match qid % 4 {
        0 => Query::PersonalizedTopK {
            seed: NodeId((qid % NODES as u64) as u32),
            k: 5,
            walk_length: 500,
            fetch_budget: None,
        },
        1 => Query::PersonalizedTopK {
            seed: NodeId(((qid * 7) % NODES as u64) as u32),
            k: 3,
            walk_length: 700,
            fetch_budget: Some(40),
        },
        2 => Query::GlobalTopK { k: 8 },
        _ => Query::PersonalizedTopK {
            seed: NodeId(((qid * 13) % NODES as u64) as u32),
            k: 10,
            walk_length: 300,
            fetch_budget: None,
        },
    }
}

/// Byte-compares one published generation against a freshly frozen reference state.
fn assert_generation_matches_reference(
    view: &PinnedView,
    reference: &IncrementalPageRank,
    context: &str,
) {
    let ref_walks = FrozenWalks::from_index(reference.walk_store(), view.epoch());
    let walks = view.walks();
    assert_eq!(
        walks.node_count(),
        ref_walks.node_count(),
        "{context}: nodes"
    );
    assert_eq!(
        walks.total_visits(),
        ref_walks.total_visits(),
        "{context}: total visits"
    );
    assert_eq!(
        walks.visit_counts(),
        ref_walks.visit_counts(),
        "{context}: visit counts"
    );
    for g in 0..ref_walks.node_count() {
        let node = NodeId::from_index(g);
        for id in WalkIndexView::segment_ids_of(&ref_walks, node) {
            assert_eq!(
                walks.segment_path(id),
                ref_walks.segment_path(id),
                "{context}: segment {id:?}"
            );
        }
        assert_eq!(
            view.graph().out_neighbors(node),
            reference.graph().out_neighbors(node),
            "{context}: out-adjacency of {node}"
        );
        assert_eq!(
            view.graph().in_neighbors(node),
            reference.graph().in_neighbors(node),
            "{context}: in-adjacency of {node}"
        );
    }
}

#[test]
fn concurrent_queries_observe_exactly_one_committed_generation() {
    let ops = schedule(701);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(703);

    for readers in thread_counts() {
        let engine = IncrementalPageRank::new_empty(NODES, config);
        let mut serving = QueryEngine::new(engine, QUERY_SEED);
        let handle = serving.handle();

        let done = AtomicBool::new(false);
        let next_query = AtomicU64::new(0);
        let recorded: Mutex<Vec<(Served, Query)>> = Mutex::new(Vec::new());

        // The writer commits the whole schedule, archiving every generation it
        // publishes; readers hammer the handle until the writer finishes.
        let (archived, _serving) = std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut archived: Vec<PinnedView> = vec![serving.pin()];
                for op in &ops {
                    match op {
                        Op::Arrive(batch) => serving.commit_arrivals(batch),
                        Op::Delete(batch) => serving.commit_deletions(batch),
                    };
                    archived.push(serving.pin());
                }
                done.store(true, Ordering::Release);
                (archived, serving)
            });
            for _ in 0..readers {
                scope.spawn(|| {
                    // At least one query per reader, then run until the writer is
                    // done — so the harness never degenerates to zero observations.
                    loop {
                        let qid = next_query.fetch_add(1, Ordering::Relaxed);
                        let query = query_for(qid);
                        let served = handle.serve(qid, &query);
                        recorded.lock().unwrap().push((served, query));
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                    }
                });
            }
            writer.join().expect("writer thread")
        });

        // Prong 1: every archived generation equals the single-threaded replay of
        // its epoch prefix — fresh freeze, no shared state with the serving stack.
        let mut reference = IncrementalPageRank::new_empty(NODES, config);
        for (epoch, view) in archived.iter().enumerate() {
            assert_eq!(view.epoch(), epoch as u64, "epochs are dense");
            if epoch > 0 {
                match &ops[epoch - 1] {
                    Op::Arrive(batch) => {
                        reference.apply_arrivals(batch);
                    }
                    Op::Delete(batch) => {
                        reference.apply_deletions(batch);
                    }
                }
            }
            assert_generation_matches_reference(
                view,
                &reference,
                &format!("epoch {epoch} ({readers} readers)"),
            );
        }

        // Prong 2: every concurrently served answer replays bit-identically
        // against its pinned generation, single-threaded.
        let recorded = recorded.into_inner().unwrap();
        assert!(
            !recorded.is_empty(),
            "readers must get queries in while the writer runs"
        );
        for (served, query) in &recorded {
            let view = &archived[served.epoch as usize];
            let replay = view.answer(QUERY_SEED, served.query_id, query);
            assert_eq!(
                *served, replay,
                "query {} served concurrently at epoch {} diverges from its \
                 single-threaded replay",
                served.query_id, served.epoch
            );
        }
    }
}

/// The pipeline window to test with: `PPR_PIPELINE_WINDOW` pins one (the CI
/// matrix forces > 1); default 3 keeps a non-trivial number of commits in flight.
fn pipeline_window() -> usize {
    std::env::var("PPR_PIPELINE_WINDOW")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(3)
        .max(2)
}

#[test]
fn pipelined_publishes_are_exactly_batch_prefix_states() {
    // With the commit pipeline holding a non-trivial in-flight window, readers may
    // trail the live engine by up to `window` epochs — but every generation they
    // can pin must still be *exactly* the state after some batch prefix, and every
    // answer must replay bit-identically against its pinned generation.
    let ops = schedule(731);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(733);
    let window = pipeline_window();

    for readers in thread_counts() {
        let engine = IncrementalPageRank::new_empty(NODES, config);
        let mut serving = QueryEngine::new(engine, QUERY_SEED).with_pipeline(window);
        let handle = serving.handle();

        let done = AtomicBool::new(false);
        let next_query = AtomicU64::new(0);
        let recorded: Mutex<Vec<(PinnedView, Served, Query)>> = Mutex::new(Vec::new());

        let serving = std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for op in &ops {
                    match op {
                        Op::Arrive(batch) => serving.commit_arrivals(batch),
                        Op::Delete(batch) => serving.commit_deletions(batch),
                    };
                }
                serving.flush_commits();
                done.store(true, Ordering::Release);
                serving
            });
            for _ in 0..readers {
                scope.spawn(|| loop {
                    let qid = next_query.fetch_add(1, Ordering::Relaxed);
                    let query = query_for(qid);
                    // Keep the pinned view with the answer: the replay oracle and
                    // the prefix oracle both need the exact generation served from.
                    let view = handle.pin();
                    let served = view.answer(QUERY_SEED, qid, &query);
                    recorded.lock().unwrap().push((view, served, query));
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                });
            }
            writer.join().expect("pipelined writer")
        });

        // After the flush the published generation is the full schedule's state.
        let final_view = serving.pin();
        assert_eq!(
            final_view.epoch(),
            ops.len() as u64,
            "flush drains the window"
        );
        let stats = serving.commit_stats();
        assert_eq!(stats.pipelined_commits, ops.len() as u64);
        assert_eq!(stats.commits, ops.len() as u64);

        // Prong 1: every pinned generation (dense prefix replay, one reference
        // engine walked forward) equals its batch-prefix state bit for bit.
        let recorded = recorded.into_inner().unwrap();
        assert!(
            !recorded.is_empty(),
            "readers must observe the pipelined run"
        );
        let mut by_epoch: Vec<&PinnedView> = recorded.iter().map(|(v, _, _)| v).collect();
        by_epoch.push(&final_view);
        by_epoch.sort_by_key(|v| v.epoch());
        by_epoch.dedup_by_key(|v| v.epoch());
        let mut reference = IncrementalPageRank::new_empty(NODES, config);
        let mut next = by_epoch.iter().peekable();
        for epoch in 0..=ops.len() {
            if epoch > 0 {
                match &ops[epoch - 1] {
                    Op::Arrive(batch) => {
                        reference.apply_arrivals(batch);
                    }
                    Op::Delete(batch) => {
                        reference.apply_deletions(batch);
                    }
                }
            }
            if next.peek().is_some_and(|v| v.epoch() == epoch as u64) {
                assert_generation_matches_reference(
                    next.next().unwrap(),
                    &reference,
                    &format!("pipelined epoch {epoch} ({readers} readers, window {window})"),
                );
            }
        }
        assert!(
            next.peek().is_none(),
            "every pinned epoch was a batch prefix"
        );

        // Prong 2: concurrent answers replay bit-identically on one thread.
        for (view, served, query) in &recorded {
            assert_eq!(served.epoch, view.epoch());
            let replay = view.answer(QUERY_SEED, served.query_id, query);
            assert_eq!(
                *served, replay,
                "query {} served under the pipeline diverges from replay",
                served.query_id
            );
        }
    }
}

#[test]
fn reader_pool_width_never_changes_answers() {
    // Fix one generation, serve the same query batch through pools of different
    // widths: the answers must be bit-identical, position by position.
    let ops = schedule(709);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(711);
    let engine = IncrementalPageRank::new_empty(NODES, config);
    let mut serving = QueryEngine::new(engine, QUERY_SEED);
    for op in &ops {
        match op {
            Op::Arrive(batch) => serving.commit_arrivals(batch),
            Op::Delete(batch) => serving.commit_deletions(batch),
        };
    }
    let jobs: Vec<(u64, Query)> = (0..40u64).map(|qid| (qid, query_for(qid))).collect();
    let handle = serving.handle();
    let single = ReaderPool::new(1).serve_all(&handle, &jobs);
    for &width in &[thread_counts().pop().unwrap_or(4).max(2), 8] {
        let wide = ReaderPool::new(width).serve_all(&handle, &jobs);
        assert_eq!(
            single, wide,
            "a {width}-thread pool must answer exactly like a single thread"
        );
    }
}

/// The batched-execution differential core: commits `ops` through `engine`, then
/// serves one query set sequentially (per-query pin) and through [`QueryBatch`]es
/// of widths 1, 4, and 32 — same-thread and fanned across pools — asserting every
/// batched answer is bit-identical to its sequentially served twin.
fn assert_batched_serving_matches_sequential<E: ServeEngine>(ops: &[Op], engine: E, context: &str) {
    let mut serving = QueryEngine::new(engine, QUERY_SEED);
    for op in ops {
        match op {
            Op::Arrive(batch) => serving.commit_arrivals(batch),
            Op::Delete(batch) => serving.commit_deletions(batch),
        };
    }
    // Duplicate seeds on purpose (qid % 4 repeats the query shapes): batch-local
    // fetch sharing is heaviest exactly when it must not perturb anything.
    let jobs: Vec<(u64, Query)> = (0..64u64).map(|qid| (qid, query_for(qid))).collect();
    let handle = serving.handle();
    let sequential: Vec<Served> = jobs.iter().map(|(qid, q)| handle.serve(*qid, q)).collect();
    for width in [1usize, 4, 32] {
        let batches: Vec<QueryBatch> = jobs.chunks(width).map(QueryBatch::of).collect();
        let same_thread: Vec<Served> = batches.iter().flat_map(|b| handle.serve_batch(b)).collect();
        assert_eq!(
            same_thread, sequential,
            "{context}: width-{width} same-thread batches diverge"
        );
        for threads in thread_counts() {
            let pool = ReaderPool::new(threads);
            let fanned: Vec<Served> = batches
                .iter()
                .flat_map(|b| pool.serve_batch(&handle, b))
                .collect();
            assert_eq!(
                fanned, sequential,
                "{context}: width-{width} batches over {threads} readers diverge"
            );
        }
    }
}

#[test]
fn batched_serving_is_bit_identical_on_every_store_layout() {
    // The tentpole acceptance differential: one pin per batch, a shared
    // stitch-fetch layer, and pooled scratch must be invisible in the answer
    // bits — on the flat, sharded, and disk-backed walk stores alike.
    let ops = schedule(741);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(743);

    assert_batched_serving_matches_sequential(
        &ops,
        IncrementalPageRank::<WalkStore>::new_empty(NODES, config),
        "flat in-memory",
    );
    assert_batched_serving_matches_sequential(
        &ops,
        IncrementalPageRank::<ShardedWalkStore>::from_graph_sharded(
            DynamicGraph::with_nodes(NODES),
            config,
            3,
            2,
        ),
        "sharded",
    );
    let dir = ppr_persist::TempDir::new("batched-serving-disk");
    let engine = DurablePageRank::create_durable_disk(
        dir.path().join("store"),
        DynamicGraph::with_nodes(NODES),
        config,
    )
    .expect("create disk durable");
    assert_batched_serving_matches_sequential(&ops, engine, "disk durable");
}

#[test]
fn salsa_serving_is_deterministic_under_a_live_writer() {
    // The SALSA flavour of the harness: hub/authority and personalized-authority
    // queries against pinned generations while arrivals and per-edge deletions
    // commit; every answer replays identically.
    let pa = PreferentialAttachmentConfig::new(80, 4, 721);
    let edges = random_permutation(&preferential_attachment_edges(&pa), 723);
    let config = MonteCarloConfig::new(0.2, 2).with_seed(727);
    let engine = IncrementalSalsa::new_empty(80, config);
    let mut serving = QueryEngine::new(engine, QUERY_SEED);
    let handle = serving.handle();
    let done = AtomicBool::new(false);
    let recorded: Mutex<Vec<(Served, Query)>> = Mutex::new(Vec::new());
    let next_query = AtomicU64::new(0);

    let archived = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut archived = vec![serving.pin()];
            for chunk in edges.chunks(32) {
                serving.commit_arrivals(chunk);
                archived.push(serving.pin());
            }
            let victims: Vec<Edge> = edges.iter().copied().step_by(9).take(10).collect();
            serving.commit_deletions(&victims);
            archived.push(serving.pin());
            done.store(true, Ordering::Release);
            archived
        });
        for _ in 0..thread_counts().pop().unwrap_or(4) {
            scope.spawn(|| loop {
                let qid = next_query.fetch_add(1, Ordering::Relaxed);
                let query = if qid % 2 == 0 {
                    Query::HubAuthorityTopK { k: 6 }
                } else {
                    Query::SalsaAuthorities {
                        seed: NodeId((qid % 80) as u32),
                        k: 4,
                        walk_length: 400,
                    }
                };
                let served = handle.serve(qid, &query);
                recorded.lock().unwrap().push((served, query));
                if done.load(Ordering::Acquire) {
                    break;
                }
            });
        }
        writer.join().expect("salsa writer")
    });

    let recorded = recorded.into_inner().unwrap();
    assert!(!recorded.is_empty());
    let by_epoch: std::collections::HashMap<u64, &PinnedView> =
        archived.iter().map(|v| (v.epoch(), v)).collect();
    for (served, query) in &recorded {
        let view = by_epoch[&served.epoch];
        let replay = view.answer(QUERY_SEED, served.query_id, query);
        assert_eq!(*served, replay, "salsa query {} diverges", served.query_id);
        if let Answer::HubsAuthorities { hubs, authorities } = &served.answer {
            assert!(hubs.len() <= 6 && authorities.len() <= 6);
        }
    }
}
