//! Restart-equivalence differential harness: crash anywhere, recover, resume —
//! and the result is byte-identical to an engine that never crashed.
//!
//! This extends the PR 3 differential harness (`tests/differential_shard.rs`) into
//! the durability dimension.  The oracle: for a seeded stream of mixed
//! arrival/deletion batches,
//!
//! ```text
//! (full in-memory run)
//!   ≡ (run k batches, checkpoint, run to c, CRASH discarding all memory,
//!      recover from snapshot + WAL, resume c..N)
//! ```
//!
//! with **byte-identical** scores, visit counts, postings, stored paths, and work
//! counters — at the flat, sharded, and disk-backed store layouts, for checkpoint
//! positions k ∈ {0, mid, N}, honouring the `PPR_TEST_THREADS` CI matrix.  The
//! corruption half: a flipped byte in the current snapshot falls back to the
//! previous generation (replaying both WALs), and a torn WAL tail recovers cleanly
//! to the last fully synced batch.

use fast_ppr::prelude::*;
use ppr_core::durable::DurablePageRank;
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_graph::stream::random_permutation;
use ppr_graph::Edge;
use ppr_persist::layout::PersistentWalkStore;
use ppr_persist::TempDir;

const NODES: usize = 120;

/// Worker-thread counts to exercise: `PPR_TEST_THREADS` pins one (the CI matrix).
fn thread_counts() -> Vec<usize> {
    match std::env::var("PPR_TEST_THREADS") {
        Ok(v) => vec![v
            .trim()
            .parse()
            .expect("PPR_TEST_THREADS must be an integer")],
        Err(_) => vec![1, 4],
    }
}

/// One durable operation: an arrival batch or a deletion batch.
#[derive(Debug, Clone)]
enum Op {
    Arrive(Vec<Edge>),
    Delete(Vec<Edge>),
}

/// A seeded stream of mixed-size arrival batches with interleaved deletion batches
/// (every third op deletes a slice of the edges already delivered).
fn schedule(seed: u64) -> Vec<Op> {
    let pa = PreferentialAttachmentConfig::new(NODES, 4, seed);
    let edges = random_permutation(&preferential_attachment_edges(&pa), seed ^ 0xfeed);
    let mut ops = Vec::new();
    let mut start = 0usize;
    for &len in [5usize, 33, 1, 64, 9, 17].iter().cycle() {
        if start >= edges.len() {
            break;
        }
        let end = (start + len).min(edges.len());
        ops.push(Op::Arrive(edges[start..end].to_vec()));
        if ops.len() % 3 == 0 {
            let victims: Vec<Edge> = edges[..end].iter().copied().step_by(7).take(8).collect();
            ops.push(Op::Delete(victims));
        }
        start = end;
    }
    ops
}

fn apply_op<W: WalkIndexMut + Sync>(engine: &mut IncrementalPageRank<W>, op: &Op) {
    match op {
        Op::Arrive(batch) => {
            engine.apply_arrivals(batch);
        }
        Op::Delete(batch) => {
            engine.apply_deletions(batch);
        }
    }
}

/// Asserts two PageRank Stores hold byte-identical contents.
fn assert_stores_identical<A: WalkIndex, B: WalkIndex>(a: &A, b: &B, context: &str) {
    assert_eq!(a.node_count(), b.node_count(), "{context}: node counts");
    assert_eq!(a.r(), b.r(), "{context}: segments per node");
    assert_eq!(
        a.total_visits(),
        b.total_visits(),
        "{context}: total_visits"
    );
    assert_eq!(
        a.visit_counts(),
        b.visit_counts(),
        "{context}: visit counts"
    );
    for g in 0..a.node_count() {
        let node = NodeId::from_index(g);
        let pa: Vec<_> = a.segments_visiting(node).collect();
        let pb: Vec<_> = b.segments_visiting(node).collect();
        assert_eq!(pa, pb, "{context}: postings of node {g}");
        for id in a.segment_ids_of(node) {
            assert_eq!(
                a.segment_path(id),
                b.segment_path(id),
                "{context}: path of segment {id:?}"
            );
        }
    }
}

/// The crash/recover/resume half of one equivalence case, generic over the store
/// layout: the durable engine has already applied `ops[..k]` and checkpointed; this
/// applies `ops[k..c]` (into the WAL), crashes, reopens, resumes `ops[c..]`, and
/// hands the recovered engine back.
fn crash_recover_resume<W>(
    mut engine: IncrementalPageRank<W>,
    root: &std::path::Path,
    ops: &[Op],
    k: usize,
    context: &str,
) -> IncrementalPageRank<W>
where
    W: WalkIndexMut + PersistentWalkStore + Sync,
{
    let gen = engine
        .checkpoint()
        .unwrap_or_else(|e| panic!("{context}: checkpoint failed: {e}"));
    assert!(engine.is_durable());
    let crash_at = k + (ops.len() - k) / 2;
    for op in &ops[k..crash_at] {
        apply_op(&mut engine, op);
    }
    drop(engine); // the crash: every in-memory structure is gone

    let mut recovered = IncrementalPageRank::<W>::open(root)
        .unwrap_or_else(|e| panic!("{context}: recovery from generation {gen} failed: {e}"));
    for op in &ops[crash_at..] {
        apply_op(&mut recovered, op);
    }
    recovered
}

#[test]
fn restart_equivalence_flat_layout() {
    let ops = schedule(601);
    let config = MonteCarloConfig::new(0.2, 4).with_seed(603);
    let mut reference = IncrementalPageRank::new_empty(NODES, config);
    for op in &ops {
        apply_op(&mut reference, op);
    }
    reference.validate_segments().unwrap();

    for k in [0, ops.len() / 2, ops.len()] {
        let tmp = TempDir::new("flat-restart");
        let root = tmp.path().join("store");
        let mut engine =
            IncrementalPageRank::create_durable(&root, DynamicGraph::with_nodes(NODES), config)
                .expect("create_durable");
        for op in &ops[..k] {
            apply_op(&mut engine, op);
        }
        let context = format!("flat, checkpoint at {k}/{}", ops.len());
        let recovered = crash_recover_resume(engine, &root, &ops, k, &context);
        assert_eq!(recovered.scores(), reference.scores(), "{context}: scores");
        assert_eq!(
            recovered.work(),
            reference.work(),
            "{context}: work counters"
        );
        assert_stores_identical(recovered.walk_store(), reference.walk_store(), &context);
        recovered.validate_segments().unwrap();
    }
}

#[test]
fn restart_equivalence_sharded_layout() {
    let ops = schedule(607);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(611);
    // The cross-layout reference is the plain FLAT in-memory engine: recovery must
    // preserve PR 3's bit-identity across layouts, not just within one.
    let mut reference = IncrementalPageRank::new_empty(NODES, config);
    for op in &ops {
        apply_op(&mut reference, op);
    }

    for threads in thread_counts() {
        for k in [0, ops.len() / 2, ops.len()] {
            let tmp = TempDir::new("sharded-restart");
            let root = tmp.path().join("store");
            let mut engine = IncrementalPageRank::create_durable_sharded(
                &root,
                DynamicGraph::with_nodes(NODES),
                config,
                4,
                threads,
            )
            .expect("create_durable_sharded");
            for op in &ops[..k] {
                apply_op(&mut engine, op);
            }
            let context = format!(
                "sharded, {threads} threads, checkpoint at {k}/{}",
                ops.len()
            );
            let recovered = crash_recover_resume(engine, &root, &ops, k, &context);
            assert_eq!(recovered.threads(), threads, "{context}: threads restored");
            assert_eq!(recovered.walk_store().shard_count(), 4, "{context}: shards");
            assert_eq!(recovered.scores(), reference.scores(), "{context}: scores");
            assert_eq!(recovered.work(), reference.work(), "{context}: work");
            assert_stores_identical(recovered.walk_store(), reference.walk_store(), &context);
            recovered.validate_segments().unwrap();
        }
    }
}

#[test]
fn restart_equivalence_disk_layout_with_page_reuse() {
    let ops = schedule(613);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(617);
    let mut reference = IncrementalPageRank::new_empty(NODES, config);
    for op in &ops {
        apply_op(&mut reference, op);
    }

    for k in [0, ops.len() / 2, ops.len()] {
        let tmp = TempDir::new("disk-restart");
        let root = tmp.path().join("store");
        let mut engine =
            DurablePageRank::create_durable_disk(&root, DynamicGraph::with_nodes(NODES), config)
                .expect("create_durable_disk");
        for op in &ops[..k] {
            apply_op(&mut engine, op);
        }
        let context = format!("disk, checkpoint at {k}/{}", ops.len());
        let recovered = crash_recover_resume(engine, &root, &ops, k, &context);
        assert_eq!(recovered.scores(), reference.scores(), "{context}: scores");
        assert_stores_identical(recovered.walk_store(), reference.walk_store(), &context);
        recovered.validate_segments().unwrap();
        // The recovered store cold-opened through the page cache.
        assert!(
            recovered.walk_store().pager_stats().loads > 0,
            "{context}: cold open must fault pages in"
        );
    }

    // Incremental write-back: on a store big enough that one batch touches only a
    // small fraction of the heap pages, a follow-up checkpoint re-renders the dirty
    // minority and streams the clean majority out of the previous generation.
    let big = 1_500usize;
    let pa = PreferentialAttachmentConfig::new(big, 5, 619);
    let edges = preferential_attachment_edges(&pa);
    let tmp = TempDir::new("disk-reuse");
    let root = tmp.path().join("store");
    let mut engine =
        DurablePageRank::create_durable_disk(&root, DynamicGraph::with_nodes(big), config).unwrap();
    engine.apply_arrivals(&edges);
    engine.checkpoint().unwrap();
    let baseline = engine.walk_store().stats();
    engine.apply_arrivals(&[Edge::new(40, 1_200)]);
    engine.checkpoint().unwrap();
    let after = engine.walk_store().stats();
    let reused = after.pages_reused - baseline.pages_reused;
    let rewritten = after.pages_rewritten - baseline.pages_rewritten;
    assert!(
        reused > 0,
        "a small update must reuse clean pages: {baseline:?} -> {after:?}"
    );
    assert!(
        rewritten < reused / 2,
        "rewritten pages must be the small minority after a one-edge update: \
         {rewritten} rewritten vs {reused} reused"
    );
}

#[test]
fn corrupt_current_snapshot_falls_back_to_the_previous_generation() {
    let ops = schedule(619);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(621);
    let third = ops.len() / 3;
    let mut reference = IncrementalPageRank::new_empty(NODES, config);
    for op in &ops {
        apply_op(&mut reference, op);
    }

    let tmp = TempDir::new("fallback");
    let root = tmp.path().join("store");
    let mut engine =
        IncrementalPageRank::create_durable(&root, DynamicGraph::with_nodes(NODES), config)
            .unwrap();
    for op in &ops[..third] {
        apply_op(&mut engine, op);
    }
    let gen1 = engine.checkpoint().unwrap();
    for op in &ops[third..2 * third] {
        apply_op(&mut engine, op);
    }
    let gen2 = engine.checkpoint().unwrap();
    assert_eq!((gen1, gen2), (1, 2));
    for op in &ops[2 * third..] {
        apply_op(&mut engine, op);
    }
    drop(engine);

    // Bit rot in the CURRENT snapshot: flip one byte in the middle of snap-2.
    let snap2 = root.join("snap-000002.ppr");
    let mut bytes = std::fs::read(&snap2).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&snap2, &bytes).unwrap();

    // Recovery falls back to generation 1 and replays BOTH logs; the result is
    // still byte-identical to the never-crashed reference.
    let mut recovered = IncrementalPageRank::<WalkStore>::open(&root).expect("fallback recovery");
    assert_eq!(recovered.scores(), reference.scores());
    assert_stores_identical(recovered.walk_store(), reference.walk_store(), "fallback");

    // A checkpoint after a fallback recovery must keep the known-good base (gen 1)
    // instead of leaving the corrupt gen 2 as the only fallback: corrupt the new
    // snapshot too, and recovery must still succeed by scanning down past it.
    assert_eq!(recovered.checkpoint().unwrap(), 3);
    drop(recovered);
    assert!(
        root.join("snap-000001.ppr").exists(),
        "the known-good base must survive the post-fallback checkpoint"
    );
    let snap3 = root.join("snap-000003.ppr");
    let mut bytes = std::fs::read(&snap3).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&snap3, &bytes).unwrap();
    let recovered = IncrementalPageRank::<WalkStore>::open(&root).expect("double-fault recovery");
    assert_eq!(recovered.scores(), reference.scores());
    assert_stores_identical(
        recovered.walk_store(),
        reference.walk_store(),
        "double fault",
    );

    // With no older generation to fall back to, corruption is a hard error.
    let tmp2 = TempDir::new("no-fallback");
    let root2 = tmp2.path().join("store");
    let engine =
        IncrementalPageRank::create_durable(&root2, DynamicGraph::with_nodes(8), config).unwrap();
    drop(engine);
    let snap0 = root2.join("snap-000000.ppr");
    let mut bytes = std::fs::read(&snap0).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&snap0, &bytes).unwrap();
    assert!(IncrementalPageRank::<WalkStore>::open(&root2).is_err());
}

#[test]
fn torn_wal_tail_recovers_to_the_last_full_record() {
    let ops = schedule(631);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(633);
    let half = ops.len() / 2;

    let tmp = TempDir::new("torn-tail");
    let root = tmp.path().join("store");
    let mut engine =
        IncrementalPageRank::create_durable(&root, DynamicGraph::with_nodes(NODES), config)
            .unwrap();
    for op in &ops[..half] {
        apply_op(&mut engine, op);
    }
    drop(engine);

    // Simulate a crash mid-append: garbage half-frame at the WAL tail.
    let wal = root.join("wal-000000.log");
    let intact_len = std::fs::metadata(&wal).unwrap().len();
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0xAB; 11]);
    std::fs::write(&wal, &bytes).unwrap();

    // Recovery truncates the torn tail and lands exactly on the synced prefix.
    let mut reference = IncrementalPageRank::new_empty(NODES, config);
    for op in &ops[..half] {
        apply_op(&mut reference, op);
    }
    let mut recovered = IncrementalPageRank::<WalkStore>::open(&root).expect("torn-tail recovery");
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), intact_len);
    assert_eq!(recovered.scores(), reference.scores());
    assert_stores_identical(recovered.walk_store(), reference.walk_store(), "torn tail");

    // And the truncated log accepts new appends: keep going, crash again, recover.
    for op in &ops[half..] {
        apply_op(&mut recovered, op);
        apply_op(&mut reference, op);
    }
    drop(recovered);
    let reopened = IncrementalPageRank::<WalkStore>::open(&root).unwrap();
    assert_eq!(reopened.scores(), reference.scores());
    assert_stores_identical(reopened.walk_store(), reference.walk_store(), "resumed log");
}

/// Truncates the last `k` records off a WAL, leaving a torn tail — what the file
/// looks like after power loss while those appends sat in the group-commit window,
/// written to the page cache but not yet covered by a coalesced `fdatasync`.
/// Returns how many full records survive.
fn cut_wal_records(wal: &std::path::Path, k: usize) -> usize {
    for _ in 0..k {
        let scan = ppr_persist::wal::read_records(wal).expect("WAL must scan");
        if scan.records.is_empty() {
            break;
        }
        // One byte short of the last valid frame: that frame becomes the torn tail.
        let file = std::fs::OpenOptions::new().write(true).open(wal).unwrap();
        file.set_len(scan.valid_len - 1).unwrap();
    }
    ppr_persist::wal::read_records(wal).unwrap().records.len()
}

#[test]
fn group_commit_crash_recovers_to_a_watermark_consistent_prefix() {
    // The pipelined group-commit durability contract: a crash may lose appends
    // still inside the coalesced-fsync window, but recovery must land on a state
    // bit-identical to replaying exactly the batches whose records survived — a
    // *prefix* of the commit order, never a gap, never a half-applied batch.
    let ops = schedule(671);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(673);

    let tmp = TempDir::new("group-commit-crash");
    let root = tmp.path().join("store");
    let engine =
        IncrementalPageRank::create_durable(&root, DynamicGraph::with_nodes(NODES), config)
            .unwrap();
    let mut serving = QueryEngine::new(engine, 1).with_pipeline(4);
    for op in &ops {
        match op {
            Op::Arrive(batch) => serving.commit_arrivals(batch),
            Op::Delete(batch) => serving.commit_deletions(batch),
        };
    }
    let stats = serving.commit_stats();
    assert!(stats.wal_fsyncs >= 1, "the committer must sync the WAL");
    assert!(
        stats.wal_appends_synced >= stats.wal_fsyncs,
        "every sync covers at least one append: {stats:?}"
    );
    drop(serving.into_engine()); // release the store lock; the "crash" is below

    // Power loss inside the group-commit window: the last 3 appends (plus a torn
    // fourth frame) never hit the platter.
    let wal = root.join("wal-000000.log");
    assert_eq!(
        ppr_persist::wal::read_records(&wal).unwrap().records.len(),
        ops.len(),
        "one WAL record per committed batch"
    );
    let survivors = cut_wal_records(&wal, 3);
    assert_eq!(survivors, ops.len() - 3);

    // Recovery lands exactly on the surviving prefix...
    let mut reference = IncrementalPageRank::new_empty(NODES, config);
    for op in &ops[..survivors] {
        apply_op(&mut reference, op);
    }
    let recovered =
        IncrementalPageRank::<WalkStore>::open(&root).expect("watermark-prefix recovery");
    assert_eq!(recovered.scores(), reference.scores(), "prefix scores");
    assert_stores_identical(
        recovered.walk_store(),
        reference.walk_store(),
        "group-commit prefix",
    );
    recovered.validate_segments().unwrap();

    // ...and resuming the lost batches (the client's redelivery) reconverges with
    // the never-crashed run, pipelined again.
    let mut resumed = QueryEngine::new(recovered, 1).with_pipeline(2);
    for op in &ops[survivors..] {
        match op {
            Op::Arrive(batch) => resumed.commit_arrivals(batch),
            Op::Delete(batch) => resumed.commit_deletions(batch),
        };
    }
    for op in &ops[survivors..] {
        apply_op(&mut reference, op);
    }
    let resumed = resumed.into_engine();
    assert_eq!(resumed.scores(), reference.scores(), "resumed scores");
    assert_stores_identical(resumed.walk_store(), reference.walk_store(), "resumed");
}

#[test]
fn salsa_engine_survives_crash_recovery() {
    let pa = PreferentialAttachmentConfig::new(80, 4, 641);
    let edges = random_permutation(&preferential_attachment_edges(&pa), 643);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(647);
    let half = edges.len() / 2;

    let mut reference = IncrementalSalsa::new_empty(80, config);
    for chunk in edges.chunks(40) {
        reference.apply_arrivals(chunk);
    }
    let victims: Vec<Edge> = edges.iter().copied().step_by(9).take(20).collect();
    for &edge in &victims {
        reference.remove_edge(edge);
    }

    let tmp = TempDir::new("salsa-restart");
    let root = tmp.path().join("store");
    let mut engine =
        IncrementalSalsa::create_durable(&root, DynamicGraph::with_nodes(80), config).unwrap();
    let chunks: Vec<&[Edge]> = edges.chunks(40).collect();
    let checkpoint_after = chunks.len() * half / edges.len();
    for chunk in &chunks[..checkpoint_after] {
        engine.apply_arrivals(chunk);
    }
    engine.checkpoint().unwrap();
    for chunk in &chunks[checkpoint_after..] {
        engine.apply_arrivals(chunk);
    }
    // Crash mid-deletion-stream: SALSA deletions consume the engine's sequential
    // RNG, whose state travels in the snapshot — replay must resume it exactly.
    for &edge in &victims[..victims.len() / 2] {
        engine.remove_edge(edge);
    }
    drop(engine);

    let mut recovered = IncrementalSalsa::<WalkStore>::open(&root).expect("salsa recovery");
    for &edge in &victims[victims.len() / 2..] {
        recovered.remove_edge(edge);
    }
    assert_stores_identical(recovered.walk_store(), reference.walk_store(), "salsa");
    let ea = recovered.estimates();
    let eb = reference.estimates();
    assert_eq!(ea.hubs, eb.hubs, "hub scores diverge after recovery");
    assert_eq!(ea.authorities, eb.authorities, "authority scores diverge");
    recovered.validate_segments().unwrap();
}

#[test]
fn store_directories_reject_misuse() {
    let tmp = TempDir::new("misuse");
    let root = tmp.path().join("store");
    let config = MonteCarloConfig::new(0.2, 2).with_seed(653);
    let engine =
        IncrementalPageRank::create_durable(&root, DynamicGraph::with_nodes(10), config).unwrap();
    drop(engine);

    // Re-creating over an existing store must fail, not clobber.
    assert!(
        IncrementalPageRank::create_durable(&root, DynamicGraph::with_nodes(10), config).is_err()
    );
    // Opening with the wrong engine kind must fail.
    assert!(IncrementalSalsa::<WalkStore>::open(&root).is_err());
    // A sharded snapshot cannot be opened by the flat engine (the reverse — reading
    // a flat snapshot as a 1-shard ShardedWalkStore — is legitimate interop).
    let sharded_root = tmp.path().join("sharded");
    drop(
        IncrementalPageRank::create_durable_sharded(
            &sharded_root,
            DynamicGraph::with_nodes(10),
            config,
            3,
            1,
        )
        .unwrap(),
    );
    assert!(matches!(
        IncrementalPageRank::<WalkStore>::open(&sharded_root),
        Err(ppr_core::PersistError::Format(_))
    ));
    // Opening a directory that is not a store must fail.
    assert!(IncrementalPageRank::<WalkStore>::open(tmp.path().join("nope")).is_err());
    // An in-memory engine cannot checkpoint.
    let mut plain = IncrementalPageRank::new_empty(4, config);
    assert!(plain.checkpoint().is_err());

    // The happy path still works after all the failed attempts.
    let reopened = IncrementalPageRank::<WalkStore>::open(&root).unwrap();
    assert_eq!(reopened.node_count(), 10);
    reopened.validate_segments().unwrap();
}

#[test]
fn checkpoint_retries_after_a_crash_between_wal_create_and_publish() {
    // A checkpoint that died after creating wal-<gen+1> but before flipping CURRENT
    // leaves an orphan log; the next checkpoint must clear it and succeed instead of
    // failing with AlreadyExists forever.
    let tmp = TempDir::new("stale-wal");
    let root = tmp.path().join("store");
    let config = MonteCarloConfig::new(0.2, 2).with_seed(661);
    let mut engine =
        IncrementalPageRank::create_durable(&root, DynamicGraph::with_nodes(20), config).unwrap();
    engine.apply_arrivals(&[Edge::new(0, 1)]);
    drop(engine);

    // Simulate the half-finished attempt: snap-1 and wal-1 exist, CURRENT still 0.
    std::fs::copy(root.join("snap-000000.ppr"), root.join("snap-000001.ppr")).unwrap();
    std::fs::copy(root.join("wal-000000.log"), root.join("wal-000001.log")).unwrap();

    let mut recovered = IncrementalPageRank::<WalkStore>::open(&root).unwrap();
    recovered.apply_arrivals(&[Edge::new(1, 2)]);
    assert_eq!(recovered.checkpoint().unwrap(), 1, "retry must succeed");
    drop(recovered);
    let reopened = IncrementalPageRank::<WalkStore>::open(&root).unwrap();
    assert_eq!(reopened.graph().edge_count(), 2);
    reopened.validate_segments().unwrap();
}

#[test]
fn checkpoint_generations_rotate_and_prune() {
    let tmp = TempDir::new("rotation");
    let root = tmp.path().join("store");
    let config = MonteCarloConfig::new(0.2, 2).with_seed(659);
    let mut engine =
        IncrementalPageRank::create_durable(&root, DynamicGraph::with_nodes(20), config).unwrap();
    for gen in 1..=4u64 {
        engine.apply_arrivals(&[Edge::new(gen as u32, gen as u32 + 1)]);
        assert_eq!(engine.checkpoint().unwrap(), gen);
    }
    // CURRENT names generation 4; generation 3 is kept as fallback, older pruned.
    assert!(root.join("snap-000004.ppr").exists());
    assert!(root.join("wal-000004.log").exists());
    assert!(root.join("snap-000003.ppr").exists());
    assert!(!root.join("snap-000002.ppr").exists());
    assert!(!root.join("wal-000001.log").exists());
    let expected = engine.scores();
    drop(engine); // release the store lock before reopening
    let reopened = IncrementalPageRank::<WalkStore>::open(&root).unwrap();
    assert_eq!(reopened.scores(), expected);
}

#[test]
fn store_lock_rejects_a_second_live_writer_and_releases_on_drop() {
    let tmp = TempDir::new("lock-engine");
    let root = tmp.path().join("store");
    let config = MonteCarloConfig::new(0.2, 2).with_seed(667);
    let engine =
        IncrementalPageRank::create_durable(&root, DynamicGraph::with_nodes(10), config).unwrap();
    // A second writer in this (live) process must fail fast with a clear error.
    match IncrementalPageRank::<WalkStore>::open(&root) {
        Err(ppr_core::PersistError::Locked(msg)) => {
            assert!(
                msg.contains(&format!("pid {}", std::process::id())),
                "lock error names the holder: {msg}"
            );
        }
        other => panic!("expected Locked, got {other:?}"),
    }
    drop(engine);
    // After release the same directory opens normally...
    let reopened = IncrementalPageRank::<WalkStore>::open(&root).unwrap();
    drop(reopened);
    // ...and a stale lock from a crashed (dead) process is stolen, not fatal.
    if std::path::Path::new("/proc").is_dir() {
        std::fs::write(root.join("LOCK"), "4194304999\n").unwrap();
        let recovered = IncrementalPageRank::<WalkStore>::open(&root)
            .expect("stale lock of a dead process must be stolen");
        assert!(recovered.is_durable());
    }
}
