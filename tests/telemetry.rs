//! Workspace-level telemetry tests: histogram quantile properties under
//! arbitrary sample sets, cross-thread shard merging, and the "one `collect()`
//! sees every layer" contract against a durable disk-backed serving session.

use fast_ppr::prelude::*;
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_persist::TempDir;
use ppr_telemetry::Histogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The log₂-bucketed histogram brackets every nearest-rank percentile
    /// within one bucket's relative error: the exact sample percentile lies in
    /// `[low, high]`, and `high < 2 × exact` (equal for zero).  Samples span
    /// the full magnitude range via a random right shift.
    #[test]
    fn bucketed_quantiles_bracket_exact_percentiles(
        samples in proptest::collection::vec(
            (0u64..64, 0u64..u64::MAX).prop_map(|(shift, raw)| raw >> shift),
            1..400,
        ),
    ) {
        let hist = Histogram::standalone();
        for &s in &samples {
            hist.record(s);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let (low, high) = snap.quantile_bounds(q);
            prop_assert!(
                low <= exact && exact <= high,
                "q={}: exact {} outside [{}, {}]", q, exact, low, high
            );
            // One bucket's relative error: `high <= 2·exact − 1`, except the
            // top bucket (exact ≥ 2^63) where the bound saturates to u64::MAX.
            let relative_bound = exact
                .checked_mul(2)
                .map_or(u64::MAX, |d| d.saturating_sub(1))
                .max(exact);
            prop_assert!(
                high <= relative_bound,
                "q={}: upper bound {} exceeds one bucket's relative error of exact {}",
                q, high, exact
            );
            prop_assert_eq!(snap.quantile(q), high, "quantile() reports the upper bound");
        }
    }
}

#[test]
fn concurrent_recording_merges_every_thread_shard() {
    // 8 threads hammer one histogram handle; the snapshot must account for
    // every sample exactly once across the per-thread shards.
    let hist = Histogram::standalone();
    let threads = 8u64;
    let per_thread = 5_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let hist = &hist;
            scope.spawn(move || {
                for i in 0..per_thread {
                    hist.record(t * per_thread + i);
                }
            });
        }
    });
    let snap = hist.snapshot();
    let n = threads * per_thread;
    assert_eq!(snap.count, n);
    assert_eq!(snap.sum, n * (n - 1) / 2);
    assert_eq!(snap.max, n - 1);
    assert_eq!(snap.buckets.iter().sum::<u64>(), n);
}

#[test]
fn one_collect_sees_every_layer_of_a_durable_disk_session() {
    // The tentpole acceptance: a single `telemetry_snapshot()` of a pipelined,
    // durable, disk-backed serving session must cover the Social Store, the
    // walk arena, the pager, the WAL, the commit path, and the query path in
    // one sorted view.
    let edges = preferential_attachment_edges(&PreferentialAttachmentConfig::new(96, 4, 0xF00D));
    let config = MonteCarloConfig::new(0.2, 3).with_seed(0xD15C);
    let dir = TempDir::new("telemetry-one-collect");
    let root = dir.path().join("store");
    let engine = DurablePageRank::create_durable_disk(&root, DynamicGraph::with_nodes(96), config)
        .expect("create disk durable");

    let tele = Telemetry::new();
    let mut serving = QueryEngine::new(engine, 17)
        .with_telemetry(&tele)
        .with_pipeline(2);
    for chunk in edges.chunks(48) {
        serving.commit_arrivals(chunk);
    }
    serving.flush_commits();
    let handle = serving.handle();
    for qid in 0..6u64 {
        handle.serve(
            qid,
            &ppr_serve::Query::PersonalizedTopK {
                seed: NodeId((qid % 9) as u32),
                k: 4,
                walk_length: 800,
                fetch_budget: Some(200),
            },
        );
    }

    let snap = serving.telemetry_snapshot().expect("registry attached");
    for counter in [
        "store.fetches",         // Social Store access accounting
        "arena.in_place_writes", // walk-arena layer
        "disk.pages_rewritten",  // on-disk store layer
        "pager.hits",            // page-cache layer
        "wal.appended",          // write-ahead log layer
        "commit.commits",        // serve commit path
        "query.served",          // query path
        "cache.hits",            // per-generation fetch cache
    ] {
        assert!(
            snap.counter(counter).is_some(),
            "one collect() must see {counter}; got names: {:?}",
            snap.names().collect::<Vec<_>>()
        );
    }
    assert_eq!(snap.counter("query.served"), Some(6));
    for hist in [
        "commit.apply",
        "commit.mirror",
        "commit.wal_sync",
        "commit.publish",
    ] {
        let h = snap.histogram(hist).expect(hist);
        assert_eq!(h.count, serving.epoch(), "{hist}: one span per commit");
    }
    assert_eq!(
        snap.histogram("query.latency").expect("latency").count,
        6,
        "every served query records a latency sample"
    );
    assert!(
        snap.gauge("cache.hit_rate").expect("hit rate present") >= 0.0,
        "ratios are guarded, never NaN"
    );
    // Group commit actually coalesced: fsyncs happened and covered appends.
    assert!(snap.counter("commit.wal_fsyncs").unwrap() > 0);

    drop(handle);
    serving.into_engine();
}
