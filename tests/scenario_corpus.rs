//! The scenario-corpus chaos harness: every named scenario, replayed through every
//! durable store layout at every thread count **with faults injected**, must end
//! bit-identical to its clean single-threaded in-memory replay.
//!
//! This is the composition of every differential oracle the workspace has built:
//!
//! * shard equivalence (`tests/differential_shard.rs`) — the flat, sharded, and
//!   disk layouts replay identically;
//! * restart equivalence (`tests/durability.rs`) — crash anywhere, recover,
//!   resume ≡ never crashed;
//! * serving fidelity (`tests/concurrent_serving.rs`) — answers are pure in
//!   `(generation, query_seed, query_id)` at any reader count.
//!
//! The scenario engine drives all three at once: a compiled trace replays through
//! the serving commit path while a [`ChaosPlan`] tears the WAL, corrupts snapshot
//! pages, and stalls the disk — and every served answer, final score vector, and
//! store digest must still match the reference run exactly.
//!
//! Thread counts honour `PPR_TEST_THREADS` (the CI matrix runs 1 and 4).

use fast_ppr::prelude::*;
use ppr_scenario::{corpus, ChaosPlan, DurableChaos, Fault, ScenarioRunner};
use ppr_store::StoreDigest;

/// Thread counts to exercise: `PPR_TEST_THREADS` pins one (the CI matrix), default
/// covers the sequential and the parallel scheduling paths.
fn thread_counts() -> Vec<usize> {
    match std::env::var("PPR_TEST_THREADS") {
        Ok(v) => vec![v
            .trim()
            .parse()
            .expect("PPR_TEST_THREADS must be a positive integer")],
        Err(_) => vec![1, 4],
    }
}

/// Full field-by-field store comparison — the diff-producing complement of the
/// [`StoreDigest`] fingerprint checks.
fn assert_stores_identical<A: WalkIndex, B: WalkIndex>(a: &A, b: &B, context: &str) {
    assert_eq!(a.node_count(), b.node_count(), "{context}: node counts");
    assert_eq!(a.r(), b.r(), "{context}: segments per node");
    assert_eq!(
        a.total_visits(),
        b.total_visits(),
        "{context}: total_visits"
    );
    assert_eq!(
        a.visit_counts(),
        b.visit_counts(),
        "{context}: visit counts"
    );
    for g in 0..a.node_count() {
        let node = NodeId::from_index(g);
        let pa: Vec<_> = a.segments_visiting(node).collect();
        let pb: Vec<_> = b.segments_visiting(node).collect();
        assert_eq!(pa, pb, "{context}: postings of node {g}");
        for id in a.segment_ids_of(node) {
            assert_eq!(
                a.segment_path(id),
                b.segment_path(id),
                "{context}: path of segment {id:?}"
            );
        }
    }
}

/// The harness core: replays `scenario` clean (single reader, in memory), then with
/// fault injection through the flat, sharded, and disk durable layouts at every
/// thread count, asserting bit-identical answers, scores, and store state.
fn corpus_scenario_survives_chaos(scenario: ppr_scenario::Scenario) {
    let trace = Trace::compile(&scenario);
    assert_eq!(
        trace,
        Trace::compile(&scenario),
        "trace compilation is pure"
    );
    let config = scenario.engine_config();
    let n = scenario.nodes;

    let (reference, clean) = ScenarioRunner::new(1).replay(
        &trace,
        IncrementalPageRank::<WalkStore>::new_empty(n, config),
    );
    assert_eq!(clean.answers.len(), trace.query_count());
    let ref_digest = StoreDigest::of(reference.walk_store());
    let ref_scores = reference.scores();

    let plan = ChaosPlan::for_trace(&trace, scenario.seed ^ 0xCAFE);
    assert!(
        plan.faults().iter().any(|&(_, f)| f == Fault::CrashTornWal),
        "{}: the plan must crash somewhere",
        scenario.name
    );

    for threads in thread_counts() {
        // Flat durable layout.
        {
            let dir =
                ppr_persist::TempDir::new(&format!("corpus-{}-flat-{threads}", scenario.name));
            let root = dir.path().join("store");
            let engine = IncrementalPageRank::<WalkStore>::create_durable(
                &root,
                DynamicGraph::with_nodes(n),
                config,
            )
            .expect("create flat durable");
            let mut chaos = DurableChaos::new(&root);
            let (after, outcome) =
                ScenarioRunner::new(threads).replay_with(&trace, engine, &plan, &mut chaos);
            let context = format!("{} flat durable, {threads} threads", scenario.name);
            assert!(chaos.crashes() > 0, "{context}: faults must actually fire");
            assert_eq!(outcome.answers, clean.answers, "{context}: served answers");
            assert_eq!(outcome.checkpoints, trace.checkpoint_indices().len());
            assert_eq!(
                StoreDigest::of(after.walk_store()),
                ref_digest,
                "{context}: store digest"
            );
            assert_eq!(after.scores(), ref_scores, "{context}: scores");
            // One full field-by-field compare per configuration: digests fingerprint,
            // this produces the diff when something breaks.
            assert_stores_identical(reference.walk_store(), after.walk_store(), &context);
            after.validate_segments().expect("segments stay valid");
        }

        // Sharded durable layout.
        {
            let dir =
                ppr_persist::TempDir::new(&format!("corpus-{}-sharded-{threads}", scenario.name));
            let root = dir.path().join("store");
            let engine = IncrementalPageRank::<ShardedWalkStore>::create_durable_sharded(
                &root,
                DynamicGraph::with_nodes(n),
                config,
                3,
                threads,
            )
            .expect("create sharded durable");
            let mut chaos = DurableChaos::new(&root);
            let (after, outcome) =
                ScenarioRunner::new(threads).replay_with(&trace, engine, &plan, &mut chaos);
            let context = format!("{} sharded durable, {threads} threads", scenario.name);
            assert!(chaos.crashes() > 0, "{context}: faults must actually fire");
            assert_eq!(outcome.answers, clean.answers, "{context}: served answers");
            assert_eq!(
                StoreDigest::of(after.walk_store()),
                ref_digest,
                "{context}: store digest"
            );
            assert_eq!(after.scores(), ref_scores, "{context}: scores");
        }

        // Disk-backed durable layout.
        {
            let dir =
                ppr_persist::TempDir::new(&format!("corpus-{}-disk-{threads}", scenario.name));
            let root = dir.path().join("store");
            let engine =
                DurablePageRank::create_durable_disk(&root, DynamicGraph::with_nodes(n), config)
                    .expect("create disk durable");
            let mut chaos = DurableChaos::new(&root);
            let (after, outcome) =
                ScenarioRunner::new(threads).replay_with(&trace, engine, &plan, &mut chaos);
            let context = format!("{} disk durable, {threads} threads", scenario.name);
            assert!(chaos.crashes() > 0, "{context}: faults must actually fire");
            assert_eq!(outcome.answers, clean.answers, "{context}: served answers");
            assert_eq!(
                StoreDigest::of(after.walk_store()),
                ref_digest,
                "{context}: store digest"
            );
            assert_eq!(after.scores(), ref_scores, "{context}: scores");
        }
    }
}

#[test]
fn flash_crowd_survives_chaos_bit_identically() {
    corpus_scenario_survives_chaos(corpus::flash_crowd());
}

#[test]
fn celebrity_join_survives_chaos_bit_identically() {
    corpus_scenario_survives_chaos(corpus::celebrity_join());
}

#[test]
fn spam_wave_survives_chaos_bit_identically() {
    corpus_scenario_survives_chaos(corpus::spam_wave());
}

#[test]
fn query_tides_survives_chaos_bit_identically() {
    corpus_scenario_survives_chaos(corpus::query_tides());
}

#[test]
fn steady_mix_survives_chaos_bit_identically() {
    corpus_scenario_survives_chaos(corpus::steady_mix());
}

#[test]
fn steady_mix_survives_chaos_under_tiny_page_budget() {
    // The full chaos matrix again, but with every disk-backed store opened under a
    // two-page cache: demand faults, CLOCK evictions, and CRC re-verification are
    // all exercised on the recovery path, and none of it may change a bit.  The
    // thread-local override reaches every open because engines (including
    // recovery reopens) open their stores on the calling thread.
    let previous = ppr_persist::set_thread_page_budget(Some(ppr_persist::PageBudget::bounded(2)));
    corpus_scenario_survives_chaos(corpus::steady_mix());
    ppr_persist::set_thread_page_budget(previous);
}

#[test]
fn pipelined_commits_survive_chaos_bit_identically() {
    // The full composition with the commit pipeline on: a durable engine replays a
    // corpus trace through a pipelined, group-committing serving session while the
    // chaos plan tears the WAL and corrupts snapshots — and every served answer,
    // final score, and store bit must still match the clean inline replay.
    let window: usize = std::env::var("PPR_PIPELINE_WINDOW")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(3)
        .max(2);
    let scenario = corpus::spam_wave();
    let trace = Trace::compile(&scenario);
    let config = scenario.engine_config();
    let n = scenario.nodes;

    let (reference, clean) = ScenarioRunner::new(1).replay(
        &trace,
        IncrementalPageRank::<WalkStore>::new_empty(n, config),
    );
    let plan = ChaosPlan::for_trace(&trace, scenario.seed ^ 0xBEEF);

    for threads in thread_counts() {
        let dir = ppr_persist::TempDir::new(&format!("corpus-pipelined-{threads}"));
        let root = dir.path().join("store");
        let engine = IncrementalPageRank::<WalkStore>::create_durable(
            &root,
            DynamicGraph::with_nodes(n),
            config,
        )
        .expect("create flat durable");
        let mut chaos = DurableChaos::new(&root);
        let (after, outcome) = ScenarioRunner::new(threads)
            .with_pipeline(window)
            .replay_with(&trace, engine, &plan, &mut chaos);
        let context = format!("spam_wave pipelined (window {window}), {threads} threads");
        assert!(chaos.crashes() > 0, "{context}: faults must actually fire");
        assert_eq!(outcome.answers, clean.answers, "{context}: served answers");
        assert_eq!(
            StoreDigest::of(after.walk_store()),
            StoreDigest::of(reference.walk_store()),
            "{context}: store digest"
        );
        assert_eq!(after.scores(), reference.scores(), "{context}: scores");
        after.validate_segments().expect("segments stay valid");
    }
}

#[test]
fn slow_disk_stalls_shift_timing_but_never_bits() {
    let scenario = corpus::steady_mix();
    let trace = Trace::compile(&scenario);
    let config = scenario.engine_config();
    let (reference, clean) = ScenarioRunner::new(1).replay(
        &trace,
        IncrementalPageRank::<WalkStore>::new_empty(scenario.nodes, config),
    );

    let plan = ChaosPlan::none().with_fault(0, Fault::SlowDisk);
    let dir = ppr_persist::TempDir::new("corpus-slow-disk");
    let root = dir.path().join("store");
    let engine = IncrementalPageRank::<WalkStore>::create_durable(
        &root,
        DynamicGraph::with_nodes(scenario.nodes),
        config,
    )
    .unwrap();
    let mut chaos = DurableChaos::new(&root);
    let (after, outcome) = ScenarioRunner::new(2).replay_with(&trace, engine, &plan, &mut chaos);

    assert!(
        chaos.slow_disk_ops() > 0,
        "the shim must observe durability I/O"
    );
    assert!(chaos.slow_disk_stalls() > 0, "stalls must actually land");
    assert_eq!(chaos.crashes(), 0, "slow disk is a timing-only fault");
    assert_eq!(outcome.answers, clean.answers, "answers under stalls");
    assert_eq!(
        StoreDigest::of(after.walk_store()),
        StoreDigest::of(reference.walk_store()),
        "stalls must never change what is written"
    );
}

#[test]
fn flash_crowd_budget_exhaustion_has_partial_result_semantics() {
    // Satellite: Corollary 9 fetch-budget semantics exercised through the scenario
    // engine (the flash-crowd query mix), not a hand-rolled loop.
    let scenario = corpus::flash_crowd();
    let budget = scenario
        .phases
        .iter()
        .find_map(|p| match p.kind {
            ppr_scenario::PhaseKind::FlashCrowd {
                fetch_budget: Some(b),
                ..
            } => Some(b),
            _ => None,
        })
        .expect("flash crowd carries a budget");
    let trace = Trace::compile(&scenario);
    let config = scenario.engine_config();
    let (_, outcome) = ScenarioRunner::new(2).replay(
        &trace,
        IncrementalPageRank::<WalkStore>::new_empty(scenario.nodes, config),
    );

    assert!(!outcome.answers.is_empty());
    assert!(
        outcome.budget_exhausted > 0,
        "a tight budget under a flash crowd must exhaust on some queries"
    );
    for answer in &outcome.answers {
        // The walker checks the budget before each fetch, so fetches never exceed
        // it, and an exhausted walk spent exactly its budget.
        assert!(
            answer.fetches <= budget,
            "query {}: {} fetches > budget {budget}",
            answer.query_id,
            answer.fetches
        );
        if answer.budget_exhausted {
            assert_eq!(
                answer.fetches, budget,
                "query {}: exhausted before spending the whole budget",
                answer.query_id
            );
        }
        // Partial results are still well-formed ranked lists.
        match &answer.answer {
            ppr_serve::Answer::Ranked(list) => {
                for pair in list.windows(2) {
                    assert!(pair[0].1 >= pair[1].1, "ranked list out of order");
                }
            }
            other => panic!("flash crowd only serves ranked answers, got {other:?}"),
        }
    }
    // Budgeted partial answers replay bit-identically (purity under exhaustion).
    let (_, again) = ScenarioRunner::new(4).replay(
        &trace,
        IncrementalPageRank::<WalkStore>::new_empty(scenario.nodes, config),
    );
    assert_eq!(outcome.answers, again.answers);
    assert_eq!(outcome.budget_exhausted, again.budget_exhausted);
}

#[test]
fn telemetry_sampling_never_changes_any_corpus_outcome() {
    // The observability satellite's determinism oracle: every corpus scenario
    // replayed with telemetry attached and per-phase JSONL sampling on must end
    // bit-identical — answers, scores, store digest — to its uninstrumented
    // replay, and the export must be non-empty, schema-valid JSONL carrying the
    // commit-stage and query-latency distributions.
    for scenario in corpus::corpus() {
        let trace = Trace::compile(&scenario);
        let config = scenario.engine_config();
        let n = scenario.nodes;
        let make = || IncrementalPageRank::<WalkStore>::new_empty(n, config);

        let (plain_engine, plain) = ScenarioRunner::new(2).replay(&trace, make());
        let tele = ppr_telemetry::Telemetry::new();
        let mut out = ppr_telemetry::JsonlAppender::new(Vec::new());
        let mut sampler = ppr_scenario::TelemetrySampler::new(&tele, &mut out);
        let (sampled_engine, sampled) = ScenarioRunner::new(2)
            .replay_sampled(&trace, make(), &mut sampler)
            .expect("in-memory sink never fails");

        let context = &scenario.name;
        assert_eq!(plain.answers, sampled.answers, "{context}: answers");
        assert_eq!(
            StoreDigest::of(plain_engine.walk_store()),
            StoreDigest::of(sampled_engine.walk_store()),
            "{context}: store digest with telemetry on vs off"
        );
        assert_eq!(plain_engine.scores(), sampled_engine.scores(), "{context}");

        // The JSONL export: non-empty, one valid object per line.
        assert!(out.lines() > 0, "{context}: export must be non-empty");
        let exported = out.into_inner().expect("flushing a Vec cannot fail");
        let exported = String::from_utf8(exported).expect("JSONL is UTF-8");
        for line in exported.lines() {
            ppr_telemetry::json::validate(line).unwrap_or_else(|(at, what)| {
                panic!("{context}: invalid JSONL at byte {at}: {what}")
            });
        }
        assert!(exported.contains("commit.mirror"), "{context}");
        assert!(exported.contains("query.latency"), "{context}");

        // The same run's registry renders Prometheus text with the query
        // percentiles and commit-stage timings the catalogue promises.
        let prom = ppr_telemetry::render_prometheus(&tele.collect());
        for needle in [
            "ppr_query_latency_p50",
            "ppr_query_latency_p99",
            "ppr_commit_mirror_p99",
            "ppr_commit_apply_count",
        ] {
            assert!(prom.contains(needle), "{context}: missing {needle}");
        }
    }
}

#[test]
fn batched_query_tides_change_no_digest_or_answer() {
    // The batched-serving invariance oracle at corpus scale: replaying the
    // query-tides scenario with its query tides chunked into batches of any
    // width (the `PPR_BATCH_WIDTH` CI knob drives `ScenarioRunner::new`'s
    // default through the same path) must change neither one served answer nor
    // the final store digest, at one reader and at the matrix thread count.
    let scenario = corpus::query_tides();
    let trace = Trace::compile(&scenario);
    let config = scenario.engine_config();
    let run = |readers: usize, width: usize| {
        ScenarioRunner::new(readers).with_batch_width(width).replay(
            &trace,
            IncrementalPageRank::<WalkStore>::new_empty(scenario.nodes, config),
        )
    };
    let (e0, o0) = run(1, 0);
    for readers in thread_counts() {
        for width in [0usize, 1, 4, 32] {
            let (e, o) = run(readers, width);
            let context = format!("width {width}, {readers} readers");
            assert_eq!(o.answers, o0.answers, "{context}: answers");
            assert_eq!(
                StoreDigest::of(e.walk_store()),
                StoreDigest::of(e0.walk_store()),
                "{context}: store digest"
            );
        }
    }
}

#[test]
fn reader_pool_width_never_changes_a_scenario_outcome() {
    let scenario = corpus::query_tides();
    let trace = Trace::compile(&scenario);
    let config = scenario.engine_config();
    let run = |readers: usize| {
        ScenarioRunner::new(readers).replay(
            &trace,
            IncrementalPageRank::<WalkStore>::new_empty(scenario.nodes, config),
        )
    };
    let (e1, o1) = run(1);
    for readers in [2usize, 4, 8] {
        let (e, o) = run(readers);
        assert_eq!(o.answers, o1.answers, "{readers} readers: answers");
        assert_eq!(
            StoreDigest::of(e.walk_store()),
            StoreDigest::of(e1.walk_store()),
            "{readers} readers: store digest"
        );
    }
}
