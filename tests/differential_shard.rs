//! Differential harness: the sharded parallel engines are observationally identical to
//! the sequential single-shard engines.
//!
//! The contract under test is the strongest one the sharded reroute pipeline makes:
//! replaying the *same seeded stream* of arrivals (and deletions) through
//! `IncrementalPageRank`/`IncrementalSalsa` over the flat `WalkStore` and over a
//! `ShardedWalkStore` at any `(shard count, thread count)` produces **byte-identical**
//! scores, `total_visits`, per-node visit counts, visit postings, and stored segment
//! paths at every checkpoint.  Every future scaling PR inherits this harness as its
//! correctness oracle: any scheduling-dependent RNG draw, racy postings update, or
//! shard-routing inconsistency shows up as a diff here.
//!
//! Thread counts honour `PPR_TEST_THREADS` (CI runs the matrix with `1` and `4`);
//! without it both are exercised.

use fast_ppr::prelude::*;
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_graph::stream::random_permutation;
use ppr_graph::Edge;

/// Thread counts to exercise: `PPR_TEST_THREADS` pins one (the CI matrix), default
/// covers the sequential and the parallel scheduling paths.
fn thread_counts() -> Vec<usize> {
    match std::env::var("PPR_TEST_THREADS") {
        Ok(v) => vec![v
            .trim()
            .parse()
            .expect("PPR_TEST_THREADS must be a positive integer")],
        Err(_) => vec![1, 4],
    }
}

/// Asserts two PageRank Stores hold byte-identical contents: counters, postings, and
/// every stored segment path.
fn assert_stores_identical<A: WalkIndex, B: WalkIndex>(a: &A, b: &B, context: &str) {
    assert_eq!(a.node_count(), b.node_count(), "{context}: node counts");
    assert_eq!(a.r(), b.r(), "{context}: segments per node");
    assert_eq!(
        a.total_visits(),
        b.total_visits(),
        "{context}: total_visits"
    );
    assert_eq!(
        a.visit_counts(),
        b.visit_counts(),
        "{context}: visit counts"
    );
    for g in 0..a.node_count() {
        let node = NodeId::from_index(g);
        let pa: Vec<_> = a.segments_visiting(node).collect();
        let pb: Vec<_> = b.segments_visiting(node).collect();
        assert_eq!(pa, pb, "{context}: postings of node {g}");
        for id in a.segment_ids_of(node) {
            assert_eq!(
                a.segment_path(id),
                b.segment_path(id),
                "{context}: path of segment {id:?}"
            );
        }
    }
}

/// The arrival/deletion schedule every differential test replays: preferential
/// attachment arrivals in mixed-size batches with interleaved deletions.
fn schedule(seed: u64) -> (Vec<Vec<Edge>>, Vec<Edge>) {
    let pa = PreferentialAttachmentConfig::new(150, 4, seed);
    let edges = random_permutation(&preferential_attachment_edges(&pa), seed ^ 0xfeed);
    let mut batches = Vec::new();
    let mut start = 0usize;
    // Mixed batch sizes: singletons, small bursts, one large burst.
    for &len in [1usize, 7, 64, 3, 128, 1, 33].iter().cycle() {
        if start >= edges.len() {
            break;
        }
        let end = (start + len).min(edges.len());
        batches.push(edges[start..end].to_vec());
        start = end;
    }
    let deletions: Vec<Edge> = edges.iter().copied().step_by(9).take(40).collect();
    (batches, deletions)
}

#[test]
fn sharded_pagerank_is_byte_identical_to_single_shard_at_every_checkpoint() {
    let (batches, deletions) = schedule(401);
    for threads in thread_counts() {
        for shards in [2usize, 4, 7] {
            let config = MonteCarloConfig::new(0.2, 4).with_seed(403);
            let mut flat = IncrementalPageRank::new_empty(150, config);
            let mut sharded = IncrementalPageRank::from_graph_sharded(
                DynamicGraph::with_nodes(150),
                config,
                shards,
                threads,
            );
            assert_stores_identical(
                flat.walk_store(),
                sharded.walk_store(),
                &format!("initialization, {shards} shards, {threads} threads"),
            );
            for (bi, batch) in batches.iter().enumerate() {
                let sa = flat.apply_arrivals(batch);
                let sb = sharded.apply_arrivals(batch);
                assert_eq!(
                    sa, sb,
                    "batch {bi} stats, {shards} shards, {threads} threads"
                );
                if bi % 3 == 0 {
                    let context = format!("batch {bi}, {shards} shards, {threads} threads");
                    assert_stores_identical(flat.walk_store(), sharded.walk_store(), &context);
                    assert_eq!(flat.scores(), sharded.scores(), "{context}: scores");
                }
            }
            for (di, &edge) in deletions.iter().enumerate() {
                let ra = flat.remove_edge(edge);
                let rb = sharded.remove_edge(edge);
                assert_eq!(ra, rb, "deletion {di} stats");
            }
            let context = format!("final state, {shards} shards, {threads} threads");
            assert_stores_identical(flat.walk_store(), sharded.walk_store(), &context);
            assert_eq!(flat.scores(), sharded.scores(), "{context}: scores");
            assert_eq!(flat.work(), sharded.work(), "{context}: work counters");
            flat.validate_segments().expect("flat segments stay valid");
            sharded
                .validate_segments()
                .expect("sharded segments stay valid");
        }
    }
}

#[test]
fn sharded_pagerank_is_invariant_across_shard_counts_and_mid_stream_thread_changes() {
    // Not only does each sharded engine match the flat one — all sharded engines match
    // each other, and retuning the thread budget mid-stream changes nothing.
    let (batches, _) = schedule(409);
    let config = MonteCarloConfig::new(0.25, 3).with_seed(411);
    let threads = *thread_counts().last().unwrap();
    let mut engines: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&s| {
            IncrementalPageRank::from_graph_sharded(
                DynamicGraph::with_nodes(150),
                config,
                s,
                threads,
            )
        })
        .collect();
    for (bi, batch) in batches.iter().enumerate() {
        for (ei, engine) in engines.iter_mut().enumerate() {
            engine.apply_arrivals(batch);
            if bi % 2 == ei % 2 {
                engine.set_threads(1 + (bi + ei) % 4);
            }
        }
    }
    let reference = engines[0].scores();
    for engine in &engines[1..] {
        assert_eq!(
            engine.scores(),
            reference,
            "scores diverge across shard counts"
        );
        assert_stores_identical(
            engines[0].walk_store(),
            engine.walk_store(),
            "cross-shard-count comparison",
        );
    }
}

#[test]
fn sharded_salsa_is_byte_identical_to_single_shard() {
    let (batches, deletions) = schedule(419);
    for threads in thread_counts() {
        let config = MonteCarloConfig::new(0.2, 3).with_seed(421);
        let mut flat = IncrementalSalsa::new_empty(150, config);
        let mut sharded =
            IncrementalSalsa::from_graph_sharded(DynamicGraph::with_nodes(150), config, 4, threads);
        for (bi, batch) in batches.iter().enumerate() {
            let sa = flat.apply_arrivals(batch);
            let sb = sharded.apply_arrivals(batch);
            assert_eq!(sa, sb, "batch {bi} stats ({threads} threads)");
        }
        for &edge in &deletions {
            assert_eq!(flat.remove_edge(edge), sharded.remove_edge(edge));
        }
        assert_stores_identical(
            flat.walk_store(),
            sharded.walk_store(),
            &format!("salsa final state ({threads} threads)"),
        );
        let ea = flat.estimates();
        let eb = sharded.estimates();
        assert_eq!(ea.hubs, eb.hubs, "hub scores diverge");
        assert_eq!(ea.authorities, eb.authorities, "authority scores diverge");
        flat.validate_segments().unwrap();
        sharded.validate_segments().unwrap();
    }
}

#[test]
fn single_edge_and_batched_replay_agree_through_the_sharded_engine() {
    // add_edge is a batch of one on both layouts; replaying singletons through the
    // sharded engine matches the flat engine edge for edge.
    let pa = PreferentialAttachmentConfig::new(100, 4, 431);
    let edges = preferential_attachment_edges(&pa);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(433);
    let threads = *thread_counts().first().unwrap();
    let mut flat = IncrementalPageRank::new_empty(100, config);
    let mut sharded =
        IncrementalPageRank::from_graph_sharded(DynamicGraph::with_nodes(100), config, 4, threads);
    for (i, &edge) in edges.iter().enumerate() {
        let sa = flat.add_edge(edge);
        let sb = sharded.add_edge(edge);
        assert_eq!(sa, sb, "edge {i}");
    }
    assert_eq!(flat.scores(), sharded.scores());
    assert_stores_identical(flat.walk_store(), sharded.walk_store(), "per-edge replay");
}

#[test]
fn shard_loads_cover_all_rewrite_work_and_social_store_agrees_on_placement() {
    let (batches, _) = schedule(439);
    let config = MonteCarloConfig::new(0.2, 4).with_seed(443);
    let threads = *thread_counts().last().unwrap();
    let mut engine =
        IncrementalPageRank::from_graph_sharded(DynamicGraph::with_nodes(150), config, 4, threads);
    engine.walk_store();
    for batch in &batches {
        engine.apply_arrivals(batch);
    }
    // Every node is placed identically by the two stores (the shared routing helper).
    for g in 0..engine.node_count() {
        let node = NodeId::from_index(g);
        assert_eq!(
            engine.social_store().shard_of(node),
            engine.walk_store().shard_of(node)
        );
    }
    // The per-shard load counters account for every rewrite the engine performed:
    // initialization wrote n * R segments, and each arrival repair rewrote one more.
    let loads = engine.walk_store().shard_loads();
    let rewrites: u64 = loads.iter().map(|l| l.segments_rewritten).sum();
    let expected =
        engine.node_count() as u64 * engine.config().r as u64 + engine.work().segments_updated;
    assert_eq!(
        rewrites, expected,
        "per-shard loads must cover all rewrites"
    );
    // Modulo placement spreads the postings-update load: no shard is silent.
    assert!(
        loads.iter().all(|l| l.postings_updates > 0),
        "every shard should own part of the postings load: {loads:?}"
    );
}
