//! Property-based tests over the core data structures and the incremental engine.
//!
//! The central invariant of the paper's method is that, whatever sequence of edge
//! insertions and deletions occurs, every stored walk segment remains a valid walk of
//! the *current* graph and the visit index stays in sync — that is exactly what makes
//! the O(nR ln m / ε²) maintenance argument sound.  These tests drive the system with
//! arbitrary operation sequences and check those invariants, plus structural properties
//! of the graph substrate and the analysis toolkit.

use fast_ppr::prelude::*;
use ppr_graph::{CsrGraph, Edge};
use ppr_persist::layout::{PagedWalks, PersistentWalkStore};
use ppr_persist::snapshot::{SnapshotFile, SnapshotWriter, SECTION_WALKS};
use ppr_persist::TempDir;
use ppr_scenario::{ChaosPlan, DurableChaos, Phase, PhaseKind, ScenarioRunner};
use ppr_store::{SegmentId, StoreDigest, WalkIndexView};
use proptest::prelude::*;

/// Worker-thread count for sharded-engine properties: honours the CI matrix variable.
fn proptest_threads() -> usize {
    std::env::var("PPR_TEST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(4)
}

/// An arbitrary edge among `n` nodes.
fn arb_edge(n: u32) -> impl Strategy<Value = Edge> {
    (0..n, 0..n).prop_map(|(s, t)| Edge::new(s, t))
}

/// An arbitrary insert/delete operation among `n` nodes.
#[derive(Debug, Clone)]
enum Op {
    Add(Edge),
    Remove(Edge),
}

fn arb_op(n: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => arb_edge(n).prop_map(Op::Add),
        1 => arb_edge(n).prop_map(Op::Remove),
    ]
}

/// An arbitrary direct store operation: rewrite a segment with a given path shape, or
/// clear it.  `path_seed` deterministically expands into a short path from the source.
#[derive(Debug, Clone)]
enum StoreOp {
    Set {
        node: u32,
        slot: usize,
        path_seed: u64,
    },
    Clear {
        node: u32,
        slot: usize,
    },
}

fn arb_store_op(n: u32, r: usize) -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        4 => (0..n, 0..r, 0u64..u64::MAX).prop_map(|(node, slot, path_seed)| StoreOp::Set {
            node,
            slot,
            path_seed,
        }),
        1 => (0..n, 0..r).prop_map(|(node, slot)| StoreOp::Clear { node, slot }),
    ]
}

/// Expands a seed into a pseudo-random path of 0..=12 extra visits within `n` nodes,
/// starting at `node` (the walk-validity rules do not apply at the store layer; the
/// store only requires the first visit to be the source).
fn expand_path(node: u32, n: u32, mut seed: u64) -> Vec<NodeId> {
    let len = (seed % 13) as usize;
    let mut path = Vec::with_capacity(len + 1);
    path.push(NodeId(node));
    for _ in 0..len {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        path.push(NodeId((seed >> 33) as u32 % n));
    }
    path
}

/// Recounts, from the stored paths alone, every index the store maintains; used to
/// check the CSR postings + delta overlay and the eager counters stay exact.
fn assert_store_matches_recount(store: &WalkStore, n: u32) {
    let mut counts = vec![0u64; n as usize];
    let mut postings = vec![std::collections::HashMap::<SegmentId, u32>::new(); n as usize];
    let mut total = 0u64;
    for node in 0..n {
        for id in store.segment_ids_of(NodeId(node)) {
            for &v in store.segment_path(id) {
                counts[v.index()] += 1;
                *postings[v.index()].entry(id).or_insert(0) += 1;
                total += 1;
            }
        }
    }
    assert_eq!(
        store.visit_counts(),
        counts.as_slice(),
        "W(v) counters drifted"
    );
    assert_eq!(store.total_visits(), total, "total_visits drifted");
    assert_eq!(
        store.total_visits(),
        store.visit_counts().iter().sum::<u64>(),
        "total_visits must equal the sum of per-node counts"
    );
    for node in 0..n {
        let from_store: std::collections::HashMap<SegmentId, u32> =
            store.segments_visiting(NodeId(node)).collect();
        assert_eq!(
            from_store, postings[node as usize],
            "postings for node {node} disagree with a from-scratch recount"
        );
        assert_eq!(
            store.distinct_visitors(NodeId(node)),
            postings[node as usize].len()
        );
    }
    assert!(store.check_consistency().is_ok());
}

/// Recounts a sharded store from its stored paths alone and checks every shard-local
/// index against it: each shard's postings and counters must equal a from-scratch
/// recount restricted to the nodes it owns, and the union over shards must equal the
/// global recount.
fn assert_sharded_store_matches_recount(store: &ShardedWalkStore, n: u32) {
    let shard_count = store.shard_count();
    let mut counts = vec![0u64; n as usize];
    let mut postings = vec![std::collections::HashMap::<SegmentId, u32>::new(); n as usize];
    let mut per_shard_total = vec![0u64; shard_count];
    for node in 0..n {
        for id in store.segment_ids_of(NodeId(node)) {
            for &v in store.segment_path(id) {
                counts[v.index()] += 1;
                *postings[v.index()].entry(id).or_insert(0) += 1;
                per_shard_total[v.index() % shard_count] += 1;
            }
        }
    }
    // Per-shard restriction: every node's postings live on its owner shard and match
    // the recount; the shard totals partition the global total.
    for node in 0..n {
        let id = NodeId(node);
        assert_eq!(store.shard_of(id), node as usize % shard_count);
        assert_eq!(
            store.visit_count(id),
            counts[node as usize],
            "W(v) drifted for node {node}"
        );
        let from_store: std::collections::HashMap<SegmentId, u32> =
            store.segments_visiting(id).collect();
        assert_eq!(
            from_store, postings[node as usize],
            "postings for node {node} disagree with a from-scratch recount"
        );
    }
    assert_eq!(store.shard_visit_totals(), per_shard_total);
    // Union over shards equals the global recount.
    assert_eq!(store.visit_counts(), counts);
    assert_eq!(store.total_visits(), counts.iter().sum::<u64>());
    assert!(store.check_consistency().is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dynamic graph's out/in adjacency stay mirror images of each other under any
    /// operation sequence, and the CSR snapshot agrees with the dynamic representation.
    #[test]
    fn dynamic_graph_stays_consistent(ops in proptest::collection::vec(arb_op(24), 1..120)) {
        let mut graph = DynamicGraph::with_nodes(24);
        for op in &ops {
            match op {
                Op::Add(edge) => graph.add_edge(*edge),
                Op::Remove(edge) => { graph.remove_edge(*edge); },
            }
        }
        prop_assert!(graph.check_consistency().is_ok());
        let csr = CsrGraph::from_view(&graph);
        prop_assert_eq!(csr.edge_count(), graph.edge_count());
        for u in graph.nodes() {
            prop_assert_eq!(csr.out_degree(u), graph.out_degree(u));
            prop_assert_eq!(csr.in_degree(u), graph.in_degree(u));
        }
    }

    /// Whatever sequence of arrivals and deletions is applied, every stored walk segment
    /// remains a valid walk of the current graph, the walk store's indexes stay
    /// consistent, and the estimates remain a probability distribution.
    #[test]
    fn incremental_engine_invariants_hold_under_arbitrary_updates(
        ops in proptest::collection::vec(arb_op(16), 1..80),
        r in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let mut engine = IncrementalPageRank::new_empty(
            16,
            MonteCarloConfig::new(0.2, r).with_seed(seed),
        );
        for op in &ops {
            match op {
                Op::Add(edge) => { engine.add_edge(*edge); },
                Op::Remove(edge) => { engine.remove_edge(*edge); },
            }
        }
        prop_assert!(engine.validate_segments().is_ok());
        let scores = engine.scores();
        let sum: f64 = scores.iter().sum();
        prop_assert!(scores.iter().all(|&s| s >= 0.0));
        prop_assert!((sum - 1.0).abs() < 1e-9 || sum == 0.0);
        // The raw estimator is bounded by the store's total capacity.
        let estimates = engine.estimates();
        prop_assert!(estimates.raw().iter().all(|&s| (0.0..=1.0 + 1e-9).contains(&s)));
    }

    /// The arena + CSR-postings walk store stays exactly consistent with a from-scratch
    /// recount of all stored segments under arbitrary interleaved set/clear sequences,
    /// and `total_visits == Σ visit_counts` always holds.
    #[test]
    fn walk_store_postings_match_recount_under_arbitrary_rewrites(
        ops in proptest::collection::vec(arb_store_op(10, 3), 1..150),
    ) {
        let n = 10u32;
        let r = 3usize;
        let mut store = WalkStore::new(n as usize, r);
        for op in &ops {
            match *op {
                StoreOp::Set { node, slot, path_seed } => {
                    let path = expand_path(node, n, path_seed);
                    store.set_segment(SegmentId::new(NodeId(node), slot, r), &path);
                }
                StoreOp::Clear { node, slot } => {
                    store.clear_segment(SegmentId::new(NodeId(node), slot, r));
                }
            }
        }
        assert_store_matches_recount(&store, n);
    }

    /// The same exact-recount invariant holds for the store *inside the engine* after
    /// arbitrary interleaved arrivals, deletions, and the reroutes they trigger — and
    /// equally when the arrivals are delivered through the batched path.
    #[test]
    fn engine_store_postings_survive_arbitrary_update_sequences(
        ops in proptest::collection::vec(arb_op(14), 1..60),
        r in 1usize..4,
        seed in 0u64..1_000,
        batch in 1usize..8,
    ) {
        let mut engine = IncrementalPageRank::new_empty(
            14,
            MonteCarloConfig::new(0.25, r).with_seed(seed),
        );
        let mut pending: Vec<Edge> = Vec::new();
        for op in &ops {
            match op {
                Op::Add(edge) => {
                    pending.push(*edge);
                    if pending.len() == batch {
                        engine.apply_arrivals(&pending);
                        pending.clear();
                    }
                }
                Op::Remove(edge) => {
                    engine.apply_arrivals(&pending);
                    pending.clear();
                    engine.remove_edge(*edge);
                }
            }
        }
        engine.apply_arrivals(&pending);
        prop_assert!(engine.validate_segments().is_ok());
        assert_store_matches_recount(engine.walk_store(), 14);
    }

    /// Under arbitrary interleaved arrivals and removals driven through the sharded
    /// engine, each shard's postings equal a from-scratch recount restricted to its
    /// nodes, the union over shards equals the global recount, and the sharded engine
    /// remains byte-identical to the single-shard engine fed the same operations.
    #[test]
    fn sharded_store_invariants_hold_under_arbitrary_updates(
        ops in proptest::collection::vec(arb_op(14), 1..60),
        r in 1usize..4,
        seed in 0u64..1_000,
        shards in 2usize..6,
        batch in 1usize..8,
    ) {
        let config = MonteCarloConfig::new(0.25, r).with_seed(seed);
        let mut flat = IncrementalPageRank::new_empty(14, config);
        let mut engine = IncrementalPageRank::from_graph_sharded(
            DynamicGraph::with_nodes(14),
            config,
            shards,
            proptest_threads(),
        );
        let mut pending: Vec<Edge> = Vec::new();
        for op in &ops {
            match op {
                Op::Add(edge) => {
                    pending.push(*edge);
                    if pending.len() == batch {
                        prop_assert_eq!(
                            flat.apply_arrivals(&pending),
                            engine.apply_arrivals(&pending)
                        );
                        pending.clear();
                    }
                }
                Op::Remove(edge) => {
                    flat.apply_arrivals(&pending);
                    engine.apply_arrivals(&pending);
                    pending.clear();
                    prop_assert_eq!(flat.remove_edge(*edge), engine.remove_edge(*edge));
                }
            }
        }
        prop_assert_eq!(flat.apply_arrivals(&pending), engine.apply_arrivals(&pending));
        prop_assert!(engine.validate_segments().is_ok());
        assert_sharded_store_matches_recount(engine.walk_store(), 14);
        prop_assert_eq!(flat.scores(), engine.scores());
        prop_assert_eq!(
            WalkIndexView::visit_counts(flat.walk_store()),
            engine.walk_store().visit_counts()
        );
    }

    /// Direct store writes through the `WalkIndexMut` surface keep a sharded store
    /// exactly consistent with a from-scratch recount, mirroring the single-shard
    /// store property above.
    #[test]
    fn sharded_walk_store_postings_match_recount_under_arbitrary_rewrites(
        ops in proptest::collection::vec(arb_store_op(10, 3), 1..150),
        shards in 1usize..5,
    ) {
        let n = 10u32;
        let r = 3usize;
        let mut store = ShardedWalkStore::new(n as usize, r, shards);
        for op in &ops {
            match *op {
                StoreOp::Set { node, slot, path_seed } => {
                    let path = expand_path(node, n, path_seed);
                    store.set_segment(SegmentId::new(NodeId(node), slot, r), &path);
                }
                StoreOp::Clear { node, slot } => {
                    store.clear_segment(SegmentId::new(NodeId(node), slot, r));
                }
            }
        }
        assert_sharded_store_matches_recount(&store, n);
    }

    /// The SALSA engine maintains its alternating-walk invariant under arbitrary updates.
    #[test]
    fn salsa_engine_invariants_hold_under_arbitrary_updates(
        ops in proptest::collection::vec(arb_op(12), 1..50),
        seed in 0u64..1_000,
    ) {
        let mut engine = IncrementalSalsa::new_empty(
            12,
            MonteCarloConfig::new(0.25, 2).with_seed(seed),
        );
        for op in &ops {
            match op {
                Op::Add(edge) => { engine.add_edge(*edge); },
                Op::Remove(edge) => { engine.remove_edge(*edge); },
            }
        }
        prop_assert!(engine.validate_segments().is_ok());
        let estimates = engine.estimates();
        let hub_sum: f64 = estimates.hubs.iter().sum();
        let auth_sum: f64 = estimates.authorities.iter().sum();
        prop_assert!((hub_sum - 1.0).abs() < 1e-9 || hub_sum == 0.0);
        prop_assert!((auth_sum - 1.0).abs() < 1e-9 || auth_sum == 0.0);
    }

    /// Power iteration always returns a probability distribution whose mass respects the
    /// reset floor ε/n, on arbitrary graphs.
    #[test]
    fn power_iteration_returns_a_distribution(
        edges in proptest::collection::vec(arb_edge(20), 0..150),
        epsilon in 0.05f64..0.9,
    ) {
        let graph = DynamicGraph::from_edges(&edges, 20);
        let result = power_iteration(
            &graph,
            &ppr_baselines::power_iteration::PowerIterationConfig {
                epsilon,
                max_iterations: 100,
                tolerance: 1e-12,
            },
        );
        let sum: f64 = result.scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        let floor = epsilon / 20.0;
        prop_assert!(result.scores.iter().all(|&s| s >= floor - 1e-9));
    }

    /// The Monte Carlo estimator agrees with power iteration in expectation: on random
    /// small graphs the total variation distance stays bounded (a coarse but fully
    /// generic accuracy property).
    #[test]
    fn estimator_is_never_wildly_wrong(
        edges in proptest::collection::vec(arb_edge(12), 10..80),
        seed in 0u64..500,
    ) {
        let graph = DynamicGraph::from_edges(&edges, 12);
        let engine = IncrementalPageRank::from_graph(
            &graph,
            MonteCarloConfig::new(0.2, 40).with_seed(seed),
        );
        let exact = power_iteration(
            &graph,
            &ppr_baselines::power_iteration::PowerIterationConfig::with_epsilon(0.2),
        );
        let tvd = engine.estimates().total_variation_distance(&exact.scores);
        prop_assert!(tvd < 0.25, "TVD {} too large for R = 40 on a 12-node graph", tvd);
    }

    /// Interpolated average precision is 1 for a perfect ranking, 0 when nothing
    /// relevant is retrieved, and always within [0, 1].
    #[test]
    fn interpolated_precision_is_well_behaved(
        relevant in proptest::collection::hash_set(0usize..50, 1..10),
        ranked in proptest::collection::vec(0usize..50, 0..50),
    ) {
        let ap = interpolated_average_precision(&ranked, &relevant);
        prop_assert!((0.0..=1.0).contains(&ap));
        let perfect: Vec<usize> = relevant.iter().copied().collect();
        prop_assert!((interpolated_average_precision(&perfect, &relevant) - 1.0).abs() < 1e-12);
        let miss: Vec<usize> = (50..60).collect();
        prop_assert_eq!(interpolated_average_precision(&miss, &relevant), 0.0);
    }

    /// Power-law fitting recovers the exponent of exact synthetic power laws for any
    /// exponent in the paper's range.
    #[test]
    fn power_law_fit_recovers_known_exponents(alpha in 0.1f64..0.99, n in 100usize..2_000) {
        let values: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-alpha)).collect();
        let fit = fit_power_law(&values, 1..n + 1).expect("enough points");
        prop_assert!((fit.exponent - alpha).abs() < 1e-6);
        prop_assert!(fit.r_squared > 0.999);
    }
}

/// Drives an engine over an arbitrary interleaved arrival/deletion history (the same
/// operation model as the invariant properties above) and returns it for snapshot
/// round-trip checks.
fn engine_after_history<W: WalkIndexMut + Sync>(
    mut engine: IncrementalPageRank<W>,
    ops: &[SnapOp],
    batch: usize,
) -> IncrementalPageRank<W> {
    let mut pending: Vec<Edge> = Vec::new();
    for op in ops {
        match op {
            SnapOp::Add(edge) => {
                pending.push(*edge);
                if pending.len() == batch {
                    engine.apply_arrivals(&pending);
                    pending.clear();
                }
            }
            SnapOp::Remove(edges) => {
                engine.apply_arrivals(&pending);
                pending.clear();
                engine.apply_deletions(edges);
            }
        }
    }
    engine.apply_arrivals(&pending);
    engine
}

/// Operation model for the snapshot round-trip properties: single arrivals batched by
/// the driver, plus whole deletion batches (exercising `apply_deletions` directly).
#[derive(Debug, Clone)]
enum SnapOp {
    Add(Edge),
    Remove(Vec<Edge>),
}

fn arb_snap_op(n: u32) -> impl Strategy<Value = SnapOp> {
    prop_oneof![
        4 => arb_edge(n).prop_map(SnapOp::Add),
        1 => proptest::collection::vec(arb_edge(n), 1..6).prop_map(SnapOp::Remove),
    ]
}

/// Writes one store's walks payload into a snapshot file and decodes it back.
fn roundtrip_walks<W: PersistentWalkStore>(store: &mut W, tag: &str) -> W {
    let dir = TempDir::new(tag);
    let path = dir.path().join("snap.ppr");
    let mut writer = SnapshotWriter::new();
    writer.add_section(SECTION_WALKS, store.encode_walks().expect("encode"));
    writer.write_to(&path).expect("write snapshot");
    W::decode_walks(PagedWalks::open(&path).expect("open walks")).expect("decode")
}

/// Byte-identical store comparison over the `WalkIndex` surface.
fn assert_same_store<A: WalkIndex, B: WalkIndex>(a: &A, b: &B) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.r(), b.r());
    assert_eq!(a.total_visits(), b.total_visits());
    assert_eq!(a.visit_counts(), b.visit_counts());
    for g in 0..a.node_count() {
        let node = NodeId::from_index(g);
        let pa: Vec<_> = a.segments_visiting(node).collect();
        let pb: Vec<_> = b.segments_visiting(node).collect();
        assert_eq!(pa, pb, "postings of node {g}");
        for id in a.segment_ids_of(node) {
            assert_eq!(a.segment_path(id), b.segment_path(id), "path of {id:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot round trip: encode→decode over an arbitrary interleaved
    /// arrival/deletion history reproduces the flat `WalkStore` exactly — stored
    /// paths, postings (checked again against a from-scratch recount), and
    /// `total_visits`.
    #[test]
    fn snapshot_roundtrip_reproduces_flat_store(
        ops in proptest::collection::vec(arb_snap_op(14), 1..60),
        r in 1usize..4,
        seed in 0u64..1_000,
        batch in 1usize..8,
    ) {
        let engine = engine_after_history(
            IncrementalPageRank::new_empty(14, MonteCarloConfig::new(0.25, r).with_seed(seed)),
            &ops,
            batch,
        );
        let mut original = engine.walk_store().clone();
        let decoded = roundtrip_walks(&mut original, "prop-flat");
        assert_same_store(&decoded, engine.walk_store());
        assert_store_matches_recount(&decoded, 14);
    }

    /// The same round trip at the sharded layout: the decoded store recounts exactly
    /// per shard and matches the original byte for byte.
    #[test]
    fn snapshot_roundtrip_reproduces_sharded_store(
        ops in proptest::collection::vec(arb_snap_op(14), 1..60),
        r in 1usize..4,
        seed in 0u64..1_000,
        shards in 2usize..6,
        batch in 1usize..8,
    ) {
        let engine = engine_after_history(
            IncrementalPageRank::from_graph_sharded(
                DynamicGraph::with_nodes(14),
                MonteCarloConfig::new(0.25, r).with_seed(seed),
                shards,
                proptest_threads(),
            ),
            &ops,
            batch,
        );
        let mut original = engine.walk_store().clone();
        let decoded = roundtrip_walks(&mut original, "prop-sharded");
        prop_assert_eq!(decoded.shard_count(), shards);
        assert_same_store(&decoded, engine.walk_store());
        assert_sharded_store_matches_recount(&decoded, 14);
    }

    /// Corruption detection: flipping any single byte of a snapshot makes both the
    /// full-file validation and the paged decode fail — never a silent wrong load.
    #[test]
    fn snapshot_byte_flips_are_always_detected(
        ops in proptest::collection::vec(arb_snap_op(10), 1..25),
        seed in 0u64..500,
        position in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let engine = engine_after_history(
            IncrementalPageRank::new_empty(10, MonteCarloConfig::new(0.25, 2).with_seed(seed)),
            &ops,
            3,
        );
        let dir = TempDir::new("prop-corrupt");
        let path = dir.path().join("snap.ppr");
        let mut writer = SnapshotWriter::new();
        writer.add_section(SECTION_WALKS, engine.walk_store().clone().encode_walks().unwrap());
        writer.write_to(&path).unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        let flip_at = ((bytes.len() - 1) as f64 * position) as usize;
        bytes[flip_at] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        prop_assert!(
            SnapshotFile::verify_all(&path).is_err(),
            "flip at byte {} bit {} survived full validation", flip_at, bit
        );
        let paged = PagedWalks::open(&path).and_then(WalkStore::decode_walks);
        prop_assert!(
            paged.is_err(),
            "flip at byte {} bit {} survived the paged decode", flip_at, bit
        );
    }

    /// Torn-tail recovery: truncating a WAL at any byte yields a clean prefix of its
    /// records (never an error, never a half-applied record).
    #[test]
    fn wal_truncation_always_recovers_a_record_prefix(
        batches in proptest::collection::vec(proptest::collection::vec(arb_edge(30), 0..10), 1..12),
        cut in 0.0f64..1.0,
    ) {
        use ppr_persist::wal::{read_records, WalOp, WalWriter};
        let dir = TempDir::new("prop-wal");
        let path = dir.path().join("wal.log");
        let mut writer = WalWriter::create(&path).unwrap();
        for (seq, batch) in batches.iter().enumerate() {
            let op = if seq % 2 == 0 { WalOp::Arrivals } else { WalOp::Deletions };
            writer.append(seq as u64, op, batch).unwrap();
        }
        drop(writer);
        let full = read_records(&path).unwrap();
        prop_assert_eq!(full.records.len(), batches.len());

        let bytes = std::fs::read(&path).unwrap();
        let keep = 16 + (((bytes.len() - 16) as f64) * cut) as usize; // never cut the header
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let scan = read_records(&path).unwrap();
        prop_assert!(scan.records.len() <= full.records.len());
        for (a, b) in scan.records.iter().zip(&full.records) {
            prop_assert_eq!(a, b, "recovered record diverges from the original");
        }
        prop_assert!(scan.valid_len <= keep as u64);
        // A cut exactly on a frame boundary is a clean shorter log; anything else
        // must be flagged as a torn tail (valid data ends before the file does).
        prop_assert_eq!(scan.torn_tail, scan.valid_len < keep as u64);
    }
}

/// An arbitrary serving query: mostly personalized walks over a small seed space
/// (duplicate seeds within a batch are likely, on purpose — that is where the
/// batch-local fetch layer shares most), plus some global-rank queries.
fn arb_query(n: u32) -> impl Strategy<Value = ppr_serve::Query> {
    prop_oneof![
        5 => (0..n, 1usize..6, 100usize..500, 0u64..40).prop_map(
            |(seed, k, walk_length, budget)| ppr_serve::Query::PersonalizedTopK {
                seed: NodeId(seed),
                k,
                walk_length,
                // budget 0 stands in for "unbudgeted" to keep the tuple flat.
                fetch_budget: if budget == 0 { None } else { Some(budget) },
            }
        ),
        1 => (1usize..8).prop_map(|k| ppr_serve::Query::GlobalTopK { k }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched execution is answer-invisible for *arbitrary* batch compositions:
    /// any mix of queries (duplicate seeds included), chopped into batches of any
    /// width, served same-thread or fanned over any pool width, returns exactly
    /// the per-query-serve answers.
    #[test]
    fn arbitrary_query_batches_serve_bit_identically(
        edges in proptest::collection::vec(arb_edge(18), 20..120),
        queries in proptest::collection::vec(arb_query(18), 1..40),
        seed in 0u64..1_000,
        width in 1usize..12,
        pool_threads in 1usize..5,
    ) {
        use ppr_serve::QueryBatch;
        let mut engine =
            IncrementalPageRank::new_empty(18, MonteCarloConfig::new(0.25, 2).with_seed(seed));
        engine.apply_arrivals(&edges);
        let serving = QueryEngine::new(engine, seed ^ 0xBA7C4);
        let handle = serving.handle();
        let jobs: Vec<(u64, ppr_serve::Query)> = queries
            .into_iter()
            .enumerate()
            .map(|(qid, q)| (qid as u64, q))
            .collect();
        let sequential: Vec<ppr_serve::Served> =
            jobs.iter().map(|(qid, q)| handle.serve(*qid, q)).collect();
        let batches: Vec<QueryBatch> = jobs.chunks(width).map(QueryBatch::of).collect();
        let same_thread: Vec<ppr_serve::Served> = batches
            .iter()
            .flat_map(|b| handle.serve_batch(b))
            .collect();
        prop_assert_eq!(&same_thread, &sequential, "same-thread batches diverge");
        let pool = ReaderPool::new(pool_threads);
        let fanned: Vec<ppr_serve::Served> = batches
            .iter()
            .flat_map(|b| pool.serve_batch(&handle, b))
            .collect();
        prop_assert_eq!(&fanned, &sequential, "fanned batches diverge");
    }
}

/// An arbitrary scenario phase kind, kept small enough to replay dozens of drawn
/// scenarios per property run.
fn arb_phase_kind() -> impl Strategy<Value = PhaseKind> {
    prop_oneof![
        3 => (2usize..8).prop_map(|batch| PhaseKind::Grow { batch }),
        2 => (1usize..4, 0u64..3).prop_map(|(queries_per_step, b)| PhaseKind::FlashCrowd {
            queries_per_step,
            k: 3,
            walk_length: 300,
            fetch_budget: if b == 0 { None } else { Some(b * 8) },
        }),
        2 => (2usize..6).prop_map(|fans_per_step| PhaseKind::CelebrityJoin { fans_per_step }),
        2 => (1usize..3, 2usize..4).prop_map(|(spammers, fanout)| PhaseKind::SpamWave {
            spammers,
            fanout,
        }),
        2 => (1usize..4, 1usize..3).prop_map(|(day_queries, night_queries)| {
            PhaseKind::QueryTides {
                day_queries,
                night_queries,
                k: 3,
                walk_length: 300,
            }
        }),
        1 => Just(PhaseKind::Checkpoint),
    ]
}

/// A whole arbitrary scenario: drawn phases with a checkpoint spliced in (so chaos
/// plans always have a fallback generation to aim at) and, whenever a spam wave was
/// drawn, a mass-unfollow of the *last* spam wave appended — exercising the
/// deletion-replay path against arbitrarily interleaved history.
fn arb_scenario() -> impl Strategy<Value = ppr_scenario::Scenario> {
    (
        proptest::collection::vec((arb_phase_kind(), 1usize..4), 1..6),
        0u64..1_000,
        12usize..32,
    )
        .prop_map(|(drawn, seed, nodes)| {
            let mut phases: Vec<Phase> = vec![Phase::new(PhaseKind::Grow { batch: 6 }, 2)];
            phases.extend(
                drawn
                    .into_iter()
                    .map(|(kind, steps)| Phase::new(kind, steps)),
            );
            phases.insert(1, Phase::new(PhaseKind::Checkpoint, 1));
            if let Some(wave) = phases
                .iter()
                .rposition(|p| matches!(p.kind, PhaseKind::SpamWave { .. }))
            {
                phases.push(Phase::new(PhaseKind::MassUnfollow { of_phase: wave }, 2));
            }
            ppr_scenario::Scenario {
                name: "arbitrary".into(),
                seed,
                nodes,
                epsilon: 0.25,
                r: 2,
                phases,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The scenario engine's differential contract holds for *arbitrary* scenarios,
    /// not just the curated corpus: compilation is pure, the flat and sharded
    /// layouts replay to bit-identical answers and stores, and a durable replay
    /// with a crash-and-recover injected at an arbitrary trace point still matches
    /// the clean in-memory run exactly.
    #[test]
    fn arbitrary_scenarios_uphold_every_differential_oracle(
        scenario in arb_scenario(),
        crash_position in 0.0f64..1.0,
    ) {
        let trace = Trace::compile(&scenario);
        prop_assert_eq!(&trace, &Trace::compile(&scenario), "compilation must be pure");
        let config = scenario.engine_config();
        let n = scenario.nodes;

        // Clean in-memory flat reference.
        let (flat, clean) = ScenarioRunner::new(1).replay(
            &trace,
            IncrementalPageRank::<WalkStore>::new_empty(n, config),
        );
        let ref_digest = StoreDigest::of(flat.walk_store());

        // Sharded in-memory replay: answers and stores bit-identical.
        let (sharded, sharded_out) = ScenarioRunner::new(proptest_threads()).replay(
            &trace,
            IncrementalPageRank::from_graph_sharded(
                DynamicGraph::with_nodes(n),
                config,
                3,
                proptest_threads(),
            ),
        );
        prop_assert_eq!(&sharded_out.answers, &clean.answers, "sharded answers diverge");
        assert_same_store(flat.walk_store(), sharded.walk_store());

        // Durable flat replay with a crash at an arbitrary event index.
        let crash_at = ((trace.events.len() - 1) as f64 * crash_position) as usize;
        let plan = ChaosPlan::crash_at(crash_at);
        let dir = TempDir::new("prop-scenario");
        let root = dir.path().join("store");
        let engine = IncrementalPageRank::<WalkStore>::create_durable(
            &root,
            DynamicGraph::with_nodes(n),
            config,
        )
        .expect("create durable");
        let mut chaos = DurableChaos::new(&root);
        let (durable, durable_out) =
            ScenarioRunner::new(proptest_threads()).replay_with(&trace, engine, &plan, &mut chaos);
        prop_assert_eq!(chaos.crashes(), 1, "the crash must fire");
        prop_assert_eq!(&durable_out.answers, &clean.answers, "post-crash answers diverge");
        prop_assert_eq!(
            StoreDigest::of(durable.walk_store()),
            ref_digest,
            "post-crash store diverges"
        );
        prop_assert_eq!(durable.scores(), flat.scores(), "post-crash scores diverge");
    }
}
