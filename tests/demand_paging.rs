//! Differential tests for the demand-paged, budget-bounded `DiskWalkStore`.
//!
//! The eviction policy is allowed to change *when* a heap page is read from disk —
//! never *what* any read returns.  These tests drive identical operation sequences
//! (segment writes, clears, demand reads, checkpoints, and reopens) against one
//! store under a randomly chosen `max_resident_pages ∈ {1..}` budget and one with
//! the cache unbounded, and require every observed path, every visit counter, and
//! the final [`StoreDigest`] to be bit-identical.  A second property pins down the
//! integrity half of the contract: after a page has been evicted, a single flipped
//! byte in the snapshot file is caught by the per-page CRC on re-fault instead of
//! being served as a silently corrupt walk.

use ppr_graph::NodeId;
use ppr_persist::layout::{PagedWalks, PersistentWalkStore, WALKS_PAGE_SIZE};
use ppr_persist::snapshot::{SnapshotWriter, SECTION_WALKS};
use ppr_persist::{set_thread_page_budget, DiskWalkStore, PageBudget, TempDir};
use ppr_store::{SegmentId, StoreDigest, WalkIndexMut, WalkIndexView};
use proptest::prelude::*;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const N: u32 = 48;
const R: usize = 2;

/// One step of the differential driver.  `Read` observes a path (the observation is
/// part of the compared output *and* the trigger for demand faults and evictions);
/// `Reopen` discards un-checkpointed state and decodes the latest snapshot under
/// the run's budget — both runs do the same, so logical states stay comparable.
#[derive(Debug, Clone)]
enum PagedOp {
    Set {
        node: u32,
        slot: usize,
        path_seed: u64,
    },
    Clear {
        node: u32,
        slot: usize,
    },
    Read {
        slot_seed: u64,
    },
    Checkpoint,
    Reopen,
}

fn arb_paged_op(n: u32, r: usize) -> impl Strategy<Value = PagedOp> {
    prop_oneof![
        4 => (0..n, 0..r, 0u64..u64::MAX).prop_map(|(node, slot, path_seed)| PagedOp::Set {
            node,
            slot,
            path_seed,
        }),
        1 => (0..n, 0..r).prop_map(|(node, slot)| PagedOp::Clear { node, slot }),
        4 => (0u64..u64::MAX).prop_map(|slot_seed| PagedOp::Read { slot_seed }),
        1 => Just(PagedOp::Checkpoint),
        1 => Just(PagedOp::Reopen),
    ]
}

/// Expands a seed into a pseudo-random path of 0..=12 extra visits within `n`
/// nodes, starting at `node` (the store only requires the first visit to be the
/// source).  Same LCG as `tests/proptest_invariants.rs`.
fn expand_path(node: u32, n: u32, mut seed: u64) -> Vec<NodeId> {
    let len = (seed % 13) as usize;
    let mut path = Vec::with_capacity(len + 1);
    path.push(NodeId(node));
    for _ in 0..len {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        path.push(NodeId((seed >> 33) as u32 % n));
    }
    path
}

fn checkpoint_to(store: &mut DiskWalkStore, path: &Path) {
    let payload = store.encode_walks().expect("encode_walks");
    let mut w = SnapshotWriter::new();
    w.add_section(SECTION_WALKS, payload);
    w.write_to(path).expect("write snapshot");
    store.after_checkpoint(path).expect("after_checkpoint");
}

/// Everything a run can externally observe: the path returned by each `Read`, the
/// final per-node visit counters, and the final whole-store digest.
#[derive(Debug, PartialEq)]
struct Observed {
    reads: Vec<(u32, Vec<NodeId>)>,
    counts: Vec<u64>,
    digest: StoreDigest,
}

/// Replays `ops` against a fresh store under `budget`, checkpointing into `dir`.
/// The thread-budget override covers the whole run so every `Reopen` decodes under
/// the same policy.
fn run_ops(ops: &[PagedOp], budget: PageBudget, dir: &Path) -> Observed {
    let previous = set_thread_page_budget(Some(budget));
    let mut store = DiskWalkStore::new(N as usize, R);
    store.set_page_budget(budget).expect("set_page_budget");
    let mut generation = 0u64;
    let mut last_snap: Option<PathBuf> = None;
    let mut reads = Vec::new();
    for op in ops {
        match op {
            PagedOp::Set {
                node,
                slot,
                path_seed,
            } => {
                let id = SegmentId::new(NodeId(*node), *slot, R);
                store.set_segment(id, &expand_path(*node, N, *path_seed));
            }
            PagedOp::Clear { node, slot } => {
                store.clear_segment(SegmentId::new(NodeId(*node), *slot, R));
            }
            PagedOp::Read { slot_seed } => {
                let slot = (slot_seed % (N as u64 * R as u64)) as u32;
                let path = WalkIndexView::segment_path(&store, SegmentId(slot)).to_vec();
                reads.push((slot, path));
            }
            PagedOp::Checkpoint => {
                let snap = dir.join(format!("snap-{generation}.ppr"));
                generation += 1;
                checkpoint_to(&mut store, &snap);
                last_snap = Some(snap);
            }
            PagedOp::Reopen => {
                if let Some(snap) = &last_snap {
                    store = DiskWalkStore::decode_walks(PagedWalks::open(snap).expect("open"))
                        .expect("decode_walks");
                }
            }
        }
        if let Some(max) = budget.max_resident_pages {
            assert!(
                store.residency().resident_pages <= max.max(1),
                "resident pages exceeded the budget of {max}"
            );
        }
    }
    store.check_consistency().expect("consistency");
    let observed = Observed {
        reads,
        counts: WalkIndexView::visit_counts(&store).into_owned(),
        digest: StoreDigest::of(&store),
    };
    set_thread_page_budget(previous);
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of writes, clears, demand reads, checkpoints, and reopens
    /// under a random page budget observes exactly what the unbounded cache does.
    #[test]
    fn bounded_cache_is_bit_identical_to_unbounded(
        ops in proptest::collection::vec(arb_paged_op(N, R), 1..48),
        pages in 1usize..6,
    ) {
        let tmp = TempDir::new("demand-paging-prop");
        let bounded_dir = tmp.path().join("bounded");
        let unbounded_dir = tmp.path().join("unbounded");
        std::fs::create_dir_all(&bounded_dir).unwrap();
        std::fs::create_dir_all(&unbounded_dir).unwrap();
        let bounded = run_ops(&ops, PageBudget::bounded(pages), &bounded_dir);
        let unbounded = run_ops(&ops, PageBudget::unbounded(), &unbounded_dir);
        prop_assert_eq!(&bounded.reads, &unbounded.reads, "observed paths diverged");
        prop_assert_eq!(&bounded.counts, &unbounded.counts, "visit counters diverged");
        prop_assert_eq!(bounded.digest, unbounded.digest, "store digests diverged");
    }
}

/// The ISSUE's acceptance matrix in one deterministic test: a checkpointed store
/// reopened at budgets {1 page, tiny, unbounded} serves identical paths and
/// digests identically, and the bounded opens stay within their budgets.
#[test]
fn reopen_at_one_page_tiny_and_unbounded_digest_identically() {
    let tmp = TempDir::new("demand-paging-budgets");
    let snap = tmp.path().join("snap-0.ppr");
    let n = 512usize;
    let mut store = DiskWalkStore::new(n, 1);
    for node in 0..n as u32 {
        let id = SegmentId::new(NodeId(node), 0, 1);
        store.set_segment(id, &expand_path(node, n as u32, node as u64 * 977 + 13));
    }
    checkpoint_to(&mut store, &snap);
    let reference = StoreDigest::of(&store);

    for budget in [
        PageBudget::bounded(1),
        PageBudget::bounded(3),
        PageBudget::unbounded(),
    ] {
        let previous = set_thread_page_budget(Some(budget));
        let reopened =
            DiskWalkStore::decode_walks(PagedWalks::open(&snap).unwrap()).expect("decode");
        // Read back-to-front so a bounded cache must thrash.
        for slot in (0..n as u32).rev() {
            assert_eq!(
                WalkIndexView::segment_path(&reopened, SegmentId(slot)),
                WalkIndexView::segment_path(&store, SegmentId(slot)),
                "slot {slot} diverged under {budget:?}"
            );
        }
        assert_eq!(
            StoreDigest::of(&reopened),
            reference,
            "digest under {budget:?}"
        );
        if let Some(max) = budget.max_resident_pages {
            let residency = reopened.residency();
            assert!(
                residency.resident_pages <= max,
                "{} resident pages under a budget of {max}",
                residency.resident_pages
            );
        }
        set_thread_page_budget(previous);
    }
}

/// A byte flipped on an *evicted* page is caught by the per-page CRC when the page
/// is demand-faulted back in — eviction never opens an integrity hole.
#[test]
fn byte_flip_on_evicted_page_is_caught_on_refault() {
    let tmp = TempDir::new("demand-paging-flip");
    let snap = tmp.path().join("snap-0.ppr");
    let n = 600usize;
    let mut store = DiskWalkStore::new(n, 1);
    for node in 0..n as u32 {
        let id = SegmentId::new(NodeId(node), 0, 1);
        // 8 steps -> a 16-step file reservation: slot k lives at step offset 16k,
        // so slots 0 and 500 sit ~31 KiB apart, far beyond one 4 KiB page.
        let path: Vec<NodeId> = (0..8).map(|i| NodeId((node + i) % n as u32)).collect();
        store.set_segment(id, &path);
    }
    checkpoint_to(&mut store, &snap);

    // Locate slot 0's bytes in the snapshot file before reopening.
    let layout = PagedWalks::open(&snap).unwrap();
    let slot0 = layout.dir()[0];
    assert!(slot0.len > 0, "slot 0 must hold a path");
    let victim_byte = layout.heap_file_offset() + slot0.offset * 4 + 2;
    let far_slot = layout
        .dir()
        .iter()
        .position(|s| s.offset * 4 >= 2 * WALKS_PAGE_SIZE as u64)
        .expect("a slot at least two pages past slot 0") as u32;
    drop(layout);

    let previous = set_thread_page_budget(Some(PageBudget::bounded(1)));
    let mut reopened =
        DiskWalkStore::decode_walks(PagedWalks::open(&snap).unwrap()).expect("decode");
    set_thread_page_budget(previous);

    // Fault slot 0 in (clean CRC), then evict its page by faulting a slot two or
    // more pages away under the one-page budget.
    reopened
        .try_fault_segment(SegmentId(0))
        .expect("clean fault");
    reopened
        .try_fault_segment(SegmentId(far_slot))
        .expect("fault of a far slot");
    assert_eq!(
        reopened.residency().resident_pages,
        1,
        "the one-page budget must have evicted slot 0's page"
    );
    assert!(
        reopened.pager_stats().evictions > 0,
        "eviction counter must record the displacement"
    );

    // Corrupt one byte of slot 0's (now evicted) page on disk, drop the decoded
    // paths, and re-fault: the page re-read must fail its CRC.
    reopened.release_path_cache();
    let mut file = std::fs::OpenOptions::new().write(true).open(&snap).unwrap();
    file.seek(SeekFrom::Start(victim_byte)).unwrap();
    file.write_all(&[0xA5]).unwrap();
    file.sync_all().unwrap();
    let err = reopened
        .try_fault_segment(SegmentId(0))
        .expect_err("re-fault of a flipped page must fail");
    let message = err.to_string();
    assert!(
        message.contains("checksum"),
        "error should blame the page CRC, got: {message}"
    );
}
