//! Cross-crate integration tests: the full pipeline from graph generation through
//! incremental maintenance to personalized retrieval, checked against the exact
//! baselines.

use fast_ppr::prelude::*;
use ppr_analysis::ranking::{top_k_indices, top_k_overlap};
use ppr_baselines::power_iteration::PowerIterationConfig;
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_graph::stream::random_permutation;
use ppr_graph::Edge;
use std::collections::HashSet;

/// Builds the whole system incrementally from an empty graph and checks that the
/// resulting global estimates track power iteration on the final graph.
#[test]
fn incremental_build_tracks_power_iteration_end_to_end() {
    let nodes = 400;
    let generated = preferential_attachment_edges(&PreferentialAttachmentConfig::new(nodes, 5, 21));
    let arrivals = random_permutation(&generated, 23);

    let mut engine =
        IncrementalPageRank::new_empty(nodes, MonteCarloConfig::new(0.2, 20).with_seed(25));
    for &edge in &arrivals {
        engine.add_edge(edge);
    }
    engine.validate_segments().expect("segments stay valid");

    let exact = power_iteration(engine.graph(), &PowerIterationConfig::with_epsilon(0.2));
    let tvd = engine.estimates().total_variation_distance(&exact.scores);
    assert!(tvd < 0.12, "total variation distance {tvd} too large");

    // The update work stays far below a per-edge rebuild.
    let rebuild = engine.config().expected_initialization_cost(nodes);
    assert!(
        engine.work().steps_per_edge() < rebuild / 20.0,
        "per-edge work {} should be far below a rebuild ({rebuild})",
        engine.work().steps_per_edge()
    );
}

/// The personalized Monte Carlo ranking agrees with exact personalized power iteration
/// on the head of the ranking.
#[test]
fn stitched_personalized_ranking_matches_exact_ranking() {
    let graph = preferential_attachment(2_000, 25, 27);
    let engine =
        IncrementalPageRank::from_graph(&graph, MonteCarloConfig::new(0.2, 10).with_seed(29));
    let seed = NodeId(1_500);
    let exclude: HashSet<usize> = std::iter::once(seed.index())
        .chain(graph.out_neighbors(seed).iter().map(|n| n.index()))
        .collect();

    let exact =
        personalized_power_iteration(&graph, seed, &PowerIterationConfig::with_epsilon(0.2));
    let exact_top = top_k_indices(&exact.scores, 20, &exclude);

    let mc_top: Vec<usize> = engine
        .personalized_top_k(seed, 20, 30_000)
        .into_iter()
        .map(|(node, _)| node.index())
        .collect();

    let overlap = top_k_overlap(&exact_top, &mc_top, 20);
    assert!(
        overlap >= 0.5,
        "Monte Carlo and exact personalized top-20 should mostly agree, overlap = {overlap}"
    );
}

/// Edge deletions keep the system consistent and the estimates accurate.
#[test]
fn deletions_keep_estimates_consistent() {
    let graph = preferential_attachment(300, 6, 31);
    let mut engine =
        IncrementalPageRank::from_graph(&graph, MonteCarloConfig::new(0.2, 15).with_seed(33));

    let victims: Vec<Edge> = engine
        .graph()
        .collect_edges()
        .into_iter()
        .step_by(3)
        .take(200)
        .collect();
    for edge in &victims {
        engine.remove_edge(*edge).expect("victim edges exist");
    }
    engine
        .validate_segments()
        .expect("segments stay valid after deletions");

    let exact = power_iteration(engine.graph(), &PowerIterationConfig::with_epsilon(0.2));
    let tvd = engine.estimates().total_variation_distance(&exact.scores);
    assert!(
        tvd < 0.15,
        "estimates should survive deletions, TVD = {tvd}"
    );
}

/// Monte Carlo SALSA authorities agree with the exact SALSA iteration, end to end.
#[test]
fn monte_carlo_salsa_matches_exact_salsa() {
    let graph = preferential_attachment(250, 5, 35);
    let engine = IncrementalSalsa::from_graph(&graph, MonteCarloConfig::new(0.2, 20).with_seed(37));
    let exact = salsa_exact(&graph, 30);
    let estimates = engine.estimates();
    let tvd: f64 = 0.5
        * estimates
            .authorities
            .iter()
            .zip(&exact.authorities)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>();
    assert!(tvd < 0.15, "SALSA authority TVD {tvd} too large");
}

/// The full recommender comparison of Appendix A runs through the façade crate.
#[test]
fn recommenders_produce_disjoint_from_friends_rankings() {
    let graph = preferential_attachment(1_000, 20, 39);
    let seed = NodeId(700);
    let friends: HashSet<NodeId> = graph.out_neighbors(seed).iter().copied().collect();

    let engine =
        IncrementalPageRank::from_graph(&graph, MonteCarloConfig::new(0.2, 5).with_seed(41));
    for (node, _) in engine.personalized_top_k(seed, 10, 5_000) {
        assert!(!friends.contains(&node) && node != seed);
    }

    let hits = personalized_hits(&graph, seed, 0.2, 10);
    let salsa = IncrementalSalsa::from_graph(&graph, MonteCarloConfig::new(0.2, 5).with_seed(43));
    let salsa_top = salsa.personalized_top_k(seed, 10, 20_000);
    assert!(!hits.authorities.is_empty());
    for (node, _) in salsa_top {
        assert!(!friends.contains(&node) && node != seed);
    }
}
