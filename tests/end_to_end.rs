//! Cross-crate integration tests: the full pipeline from graph generation through
//! incremental maintenance to personalized retrieval, checked against the exact
//! baselines.

use fast_ppr::prelude::*;
use ppr_analysis::ranking::{top_k_indices, top_k_overlap};
use ppr_baselines::power_iteration::PowerIterationConfig;
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_graph::stream::random_permutation;
use ppr_graph::Edge;
use std::collections::HashSet;

/// Builds the whole system incrementally from an empty graph and checks that the
/// resulting global estimates track power iteration on the final graph.
#[test]
fn incremental_build_tracks_power_iteration_end_to_end() {
    let nodes = 400;
    let generated = preferential_attachment_edges(&PreferentialAttachmentConfig::new(nodes, 5, 21));
    let arrivals = random_permutation(&generated, 23);

    let mut engine =
        IncrementalPageRank::new_empty(nodes, MonteCarloConfig::new(0.2, 20).with_seed(25));
    for &edge in &arrivals {
        engine.add_edge(edge);
    }
    engine.validate_segments().expect("segments stay valid");

    let exact = power_iteration(engine.graph(), &PowerIterationConfig::with_epsilon(0.2));
    let tvd = engine.estimates().total_variation_distance(&exact.scores);
    assert!(tvd < 0.12, "total variation distance {tvd} too large");

    // The update work stays far below a per-edge rebuild.
    let rebuild = engine.config().expected_initialization_cost(nodes);
    assert!(
        engine.work().steps_per_edge() < rebuild / 20.0,
        "per-edge work {} should be far below a rebuild ({rebuild})",
        engine.work().steps_per_edge()
    );
}

/// The personalized Monte Carlo ranking agrees with exact personalized power iteration
/// on the head of the ranking.
#[test]
fn stitched_personalized_ranking_matches_exact_ranking() {
    let graph = preferential_attachment(2_000, 25, 27);
    let engine =
        IncrementalPageRank::from_graph(&graph, MonteCarloConfig::new(0.2, 10).with_seed(29));
    let seed = NodeId(1_500);
    let exclude: HashSet<usize> = std::iter::once(seed.index())
        .chain(graph.out_neighbors(seed).iter().map(|n| n.index()))
        .collect();

    let exact =
        personalized_power_iteration(&graph, seed, &PowerIterationConfig::with_epsilon(0.2));
    let exact_top = top_k_indices(&exact.scores, 20, &exclude);

    let mc_top: Vec<usize> = engine
        .personalized_top_k(seed, 20, 30_000)
        .into_iter()
        .map(|(node, _)| node.index())
        .collect();

    let overlap = top_k_overlap(&exact_top, &mc_top, 20);
    assert!(
        overlap >= 0.5,
        "Monte Carlo and exact personalized top-20 should mostly agree, overlap = {overlap}"
    );
}

/// Edge deletions keep the system consistent and the estimates accurate.
#[test]
fn deletions_keep_estimates_consistent() {
    let graph = preferential_attachment(300, 6, 31);
    let mut engine =
        IncrementalPageRank::from_graph(&graph, MonteCarloConfig::new(0.2, 15).with_seed(33));

    let victims: Vec<Edge> = engine
        .graph()
        .collect_edges()
        .into_iter()
        .step_by(3)
        .take(200)
        .collect();
    for edge in &victims {
        engine.remove_edge(*edge).expect("victim edges exist");
    }
    engine
        .validate_segments()
        .expect("segments stay valid after deletions");

    let exact = power_iteration(engine.graph(), &PowerIterationConfig::with_epsilon(0.2));
    let tvd = engine.estimates().total_variation_distance(&exact.scores);
    assert!(
        tvd < 0.15,
        "estimates should survive deletions, TVD = {tvd}"
    );
}

/// Deletion-then-recount invariant: after every deletion, the store's postings and
/// counters equal a from-scratch recount of the stored paths, no segment traverses a
/// fully deleted edge, and this holds equally on the flat and the sharded layouts.
/// (`remove_edge` had unit tests but no end-to-end/property coverage; this also seeds
/// the ROADMAP's "batched deletions" item with a correctness oracle.)
#[test]
fn deletions_keep_stores_exactly_consistent_on_both_layouts() {
    let nodes = 120;
    let edges = preferential_attachment_edges(&PreferentialAttachmentConfig::new(nodes, 5, 47));
    let config = MonteCarloConfig::new(0.2, 6).with_seed(49);
    let mut flat = IncrementalPageRank::new_empty(nodes, config);
    let mut sharded =
        IncrementalPageRank::from_graph_sharded(DynamicGraph::with_nodes(nodes), config, 4, 4);
    flat.apply_arrivals(&edges);
    sharded.apply_arrivals(&edges);

    let victims: Vec<Edge> = edges.iter().copied().step_by(4).take(120).collect();
    for (i, &edge) in victims.iter().enumerate() {
        let a = flat.remove_edge(edge);
        let b = sharded.remove_edge(edge);
        assert_eq!(a, b, "deletion {i} stats diverge between layouts");
        if i % 20 == 0 {
            // Recount from scratch: every maintained index must match exactly.
            flat.walk_store().check_consistency().unwrap();
            WalkIndexMut::check_consistency(sharded.walk_store()).unwrap();
            flat.validate_segments().unwrap();
            sharded.validate_segments().unwrap();
        }
        // A fully deleted edge may no longer be traversed by any stored segment.
        if !flat.graph().has_edge(edge) {
            for node in flat.graph().nodes() {
                for id in flat.walk_store().segment_ids_of(node) {
                    assert!(
                        !flat.walk_store().uses_edge(id, edge.source, edge.target),
                        "segment {id:?} still traverses deleted edge {edge}"
                    );
                }
            }
        }
    }
    assert_eq!(flat.scores(), sharded.scores());
    assert_eq!(
        WalkIndexView::visit_counts(flat.walk_store()),
        sharded.walk_store().visit_counts()
    );
}

/// Sequential vs batch-replay deletion oracle: deleting a source's edges one at a time
/// from a fully built engine must leave the walk store in a state equivalent to
/// rebuilding from the smaller edge set — same validity, exact index consistency, and
/// estimates that still track power iteration on the post-deletion graph.  When
/// deletions are batched per source (ROADMAP), this test is the baseline the batched
/// path must reproduce.
#[test]
fn sequential_deletions_match_a_batch_replay_of_the_surviving_stream() {
    let nodes = 200;
    let edges = preferential_attachment_edges(&PreferentialAttachmentConfig::new(nodes, 5, 51));
    let config = MonteCarloConfig::new(0.2, 10).with_seed(53);

    // Engine A: build everything, then delete every edge of a hot source one by one.
    let victim_source = edges[0].source;
    let mut engine = IncrementalPageRank::new_empty(nodes, config);
    engine.apply_arrivals(&edges);
    let victims: Vec<Edge> = edges
        .iter()
        .copied()
        .filter(|e| e.source == victim_source)
        .collect();
    assert!(
        victims.len() > 1,
        "the victim source must lose several edges"
    );
    for &edge in &victims {
        engine.remove_edge(edge).expect("victim edges exist");
    }
    engine.validate_segments().unwrap();
    engine.walk_store().check_consistency().unwrap();

    // Engine B: replay only the surviving edges in batches.
    let survivors: Vec<Edge> = edges
        .iter()
        .copied()
        .filter(|e| e.source != victim_source)
        .collect();
    let mut replay = IncrementalPageRank::new_empty(nodes, config);
    for chunk in survivors.chunks(64) {
        replay.apply_arrivals(chunk);
    }
    replay.validate_segments().unwrap();

    // Both graphs now agree, and both estimate the same stationary distribution.
    assert_eq!(engine.graph().edge_count(), replay.graph().edge_count());
    let exact = power_iteration(engine.graph(), &PowerIterationConfig::with_epsilon(0.2));
    let tvd_deleted = engine.estimates().total_variation_distance(&exact.scores);
    let tvd_replayed = replay.estimates().total_variation_distance(&exact.scores);
    assert!(
        tvd_deleted < 0.12,
        "deletion-maintained estimates drifted, TVD = {tvd_deleted:.4}"
    );
    assert!(
        tvd_deleted < tvd_replayed * 2.0 + 0.02,
        "deletions (TVD {tvd_deleted:.4}) should match a from-scratch replay \
         (TVD {tvd_replayed:.4})"
    );
    // The deleted source is dangling now: none of its segments may leave it.
    assert_eq!(engine.graph().out_degree(victim_source), 0);
    for id in engine.walk_store().segment_ids_of(victim_source) {
        assert_eq!(engine.walk_store().segment_len(id), 1);
    }
}

/// Monte Carlo SALSA authorities agree with the exact SALSA iteration, end to end.
#[test]
fn monte_carlo_salsa_matches_exact_salsa() {
    let graph = preferential_attachment(250, 5, 35);
    let engine = IncrementalSalsa::from_graph(&graph, MonteCarloConfig::new(0.2, 20).with_seed(37));
    let exact = salsa_exact(&graph, 30);
    let estimates = engine.estimates();
    let tvd: f64 = 0.5
        * estimates
            .authorities
            .iter()
            .zip(&exact.authorities)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>();
    assert!(tvd < 0.15, "SALSA authority TVD {tvd} too large");
}

/// The full recommender comparison of Appendix A runs through the façade crate.
#[test]
fn recommenders_produce_disjoint_from_friends_rankings() {
    let graph = preferential_attachment(1_000, 20, 39);
    let seed = NodeId(700);
    let friends: HashSet<NodeId> = graph.out_neighbors(seed).iter().copied().collect();

    let engine =
        IncrementalPageRank::from_graph(&graph, MonteCarloConfig::new(0.2, 5).with_seed(41));
    for (node, _) in engine.personalized_top_k(seed, 10, 5_000) {
        assert!(!friends.contains(&node) && node != seed);
    }

    let hits = personalized_hits(&graph, seed, 0.2, 10);
    let salsa = IncrementalSalsa::from_graph(&graph, MonteCarloConfig::new(0.2, 5).with_seed(43));
    let salsa_top = salsa.personalized_top_k(seed, 10, 20_000);
    assert!(!hits.authorities.is_empty());
    for (node, _) in salsa_top {
        assert!(!friends.contains(&node) && node != seed);
    }
}
