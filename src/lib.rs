//! # fast-ppr
//!
//! Façade crate for the `fast-ppr` workspace: a Rust reproduction of
//! *Fast Incremental and Personalized PageRank* (Bahmani, Chowdhury, Goel; VLDB 2010).
//!
//! The workspace is organised as follows:
//!
//! * [`graph`] ([`ppr_graph`]) — directed dynamic/static graphs, synthetic social-graph
//!   generators, and edge-arrival streams.
//! * [`store`] ([`ppr_store`]) — the Social Store (FlockDB stand-in) and the PageRank
//!   Store holding cached walk segments, both with explicit fetch/work accounting.  The
//!   PageRank Store is backed by a flat step arena plus CSR-style visit postings, and
//!   every engine consumes it through the `WalkIndex` API layer.
//! * [`persist`] ([`ppr_persist`]) — durability: checksummed generation snapshots, an
//!   edge-event write-ahead log, and the file-backed `DiskWalkStore`; the engines'
//!   `create_durable` / `open` / `checkpoint` APIs live in `ppr_core::durable`.
//! * [`core`] ([`ppr_core`]) — the paper's contribution: Monte Carlo PageRank/SALSA with
//!   incremental walk-segment maintenance and personalized top-k retrieval by walk
//!   stitching (Algorithm 1).
//! * [`serve`] ([`ppr_serve`]) — snapshot-isolated concurrent query serving: a
//!   single-writer/many-readers `QueryEngine` publishing epoch-pinned generation views,
//!   so personalized top-k, global-rank, and SALSA queries run lock-free on reader
//!   threads while write batches commit.
//! * [`scenario`] ([`ppr_scenario`]) — a deterministic workload simulator and chaos
//!   harness: seeded scenario DSL (flash crowds, celebrity joins, spam waves, query
//!   tides) compiled to event traces and replayed through any engine/store layout
//!   with fault injection (torn WAL, torn snapshot pages, slow-disk stalls).
//! * [`baselines`] ([`ppr_baselines`]) — power iteration, exact SALSA, HITS, COSINE and
//!   naive incremental recomputation baselines.
//! * [`analysis`] ([`ppr_analysis`]) — power-law fitting, CDFs, and ranking metrics used
//!   by the experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use fast_ppr::prelude::*;
//!
//! // Build a small synthetic social graph.
//! let graph = preferential_attachment(1_000, 5, 42);
//!
//! // Maintain R = 4 walk segments per node with reset probability 0.2.
//! let config = MonteCarloConfig::new(0.2, 4).with_seed(7);
//! let mut engine = IncrementalPageRank::from_graph(&graph, config);
//!
//! // Global PageRank estimates for every node.
//! let scores = engine.scores();
//! assert_eq!(scores.len(), graph.node_count());
//!
//! // Personalized top-10 for node 0 using the cached walk segments.
//! let top = engine.personalized_top_k(NodeId(0), 10, 2_000);
//! assert!(top.len() <= 10);
//!
//! // Edge arrivals can be applied one by one or as a batch (grouped per source node).
//! engine.add_edge(Edge::new(0, 500));
//! engine.apply_arrivals(&[Edge::new(1, 600), Edge::new(1, 700), Edge::new(2, 600)]);
//! assert!(engine.validate_segments().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ppr_analysis as analysis;
pub use ppr_baselines as baselines;
pub use ppr_core as core;
pub use ppr_graph as graph;
pub use ppr_persist as persist;
pub use ppr_scenario as scenario;
pub use ppr_serve as serve;
pub use ppr_store as store;
pub use ppr_telemetry as telemetry;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use ppr_analysis::powerlaw::fit_power_law;
    pub use ppr_analysis::precision::interpolated_average_precision;
    pub use ppr_baselines::hits::{hits, personalized_hits};
    pub use ppr_baselines::power_iteration::{personalized_power_iteration, power_iteration};
    pub use ppr_baselines::salsa_exact::salsa_exact;
    pub use ppr_core::config::MonteCarloConfig;
    pub use ppr_core::durable::{DurabilityOptions, DurablePageRank};
    pub use ppr_core::incremental::IncrementalPageRank;
    pub use ppr_core::personalized::PersonalizedWalker;
    pub use ppr_core::salsa::IncrementalSalsa;
    pub use ppr_graph::dynamic::DynamicGraph;
    pub use ppr_graph::generators::preferential_attachment;
    pub use ppr_graph::view::GraphView;
    pub use ppr_graph::{Edge, NodeId};
    pub use ppr_scenario::{ChaosPlan, Scenario, ScenarioRunner, Trace};
    pub use ppr_serve::{QueryEngine, ReaderPool, ServeHandle};
    pub use ppr_store::index::{WalkIndex, WalkIndexMut, WalkIndexView};
    pub use ppr_store::sharded::ShardedWalkStore;
    pub use ppr_store::social::SocialStore;
    pub use ppr_store::view::{FrozenGraph, FrozenWalks};
    pub use ppr_store::walks::WalkStore;
    pub use ppr_telemetry::{Telemetry, TelemetrySnapshot};
}
