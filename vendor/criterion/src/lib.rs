//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The fast-ppr workspace is built in hermetic environments with no access to
//! crates.io, so this vendored crate implements the `criterion` 0.5 API subset
//! used by the benches under `crates/bench/benches/`: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It measures wall-clock means over a configurable number of samples and
//! prints one line per benchmark — enough to compare runs by hand, with no
//! statistical machinery, plotting, or CLI filtering.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a benchmark within a group, e.g. `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        BenchmarkId {
            id: value.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(value: String) -> Self {
        BenchmarkId { id: value }
    }
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Hint for how `iter_batched` should size its setup batches (ignored here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times a single benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Runs `routine` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Runs `routine` on fresh inputs produced by `setup`; only `routine` is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    fn mean(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.total / self.iterations as u32
        }
    }
}

/// The benchmark driver: configuration plus registration of benchmark routines.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into(), self.sample_size, f, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name and an optional throughput.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotates every benchmark in the group with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timed samples for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            &id.into(),
            self.sample_size,
            f,
            self.throughput,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    samples: usize,
    mut f: F,
    throughput: Option<Throughput>,
) {
    let label = match group {
        Some(group) => format!("{group}/{id}"),
        None => id.to_string(),
    };
    let mut bencher = Bencher::new(samples);
    f(&mut bencher);
    let mean = bencher.mean();
    match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {label:<50} mean {mean:>12.2?} ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {label:<50} mean {mean:>12.2?} ({rate:.0} B/s)");
        }
        _ => println!("bench {label:<50} mean {mean:>12.2?}"),
    }
}

/// Bundles benchmark functions into a named group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates a `main` that runs every listed group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn bench_function_runs_routine() {
        static CALLS: AtomicU64 = AtomicU64::new(0);
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("counter", |b| {
            b.iter(|| CALLS.fetch_add(1, Ordering::Relaxed))
        });
        // 1 warm-up + 3 samples.
        assert_eq!(CALLS.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(7));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn iter_batched_reruns_setup_per_sample() {
        static SETUPS: AtomicU64 = AtomicU64::new(0);
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || SETUPS.fetch_add(1, Ordering::Relaxed),
                |x| x + 1,
                BatchSize::LargeInput,
            )
        });
        assert_eq!(SETUPS.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn group_sample_size_does_not_leak_past_finish() {
        static CALLS: AtomicU64 = AtomicU64::new(0);
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("noisy");
        group.sample_size(50);
        group.finish();
        c.bench_function("after_group", |b| {
            b.iter(|| CALLS.fetch_add(1, Ordering::Relaxed))
        });
        // 1 warm-up + the Criterion-level 2 samples, not the group's 50.
        assert_eq!(CALLS.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
