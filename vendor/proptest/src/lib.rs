//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The fast-ppr workspace is built in hermetic environments with no access to
//! crates.io, so this vendored crate implements the `proptest` 1.x API subset
//! used by `tests/proptest_invariants.rs`:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, implemented for integer
//!   and float ranges and for tuples;
//! * [`collection::vec`] and [`collection::hash_set`];
//! * the [`proptest!`], [`prop_oneof!`], and `prop_assert*` macros;
//! * [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! Unlike real proptest there is **no shrinking**: a failing case prints the
//! case index and the generated inputs' `Debug` output to stderr and then
//! re-raises the panic. Case generation is deterministic per test name, so
//! failures reproduce.

pub mod strategy {
    //! The [`Strategy`] trait and combinators over it.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Returns a strategy that applies `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    // Ranges sample through the vendored `rand` crate's uniform implementations,
    // exactly as real proptest delegates to `rand`.
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u32, u64, usize, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    /// A type-erased strategy, used by [`Union`] and the `prop_oneof!` macro.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type.
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
        Box::new(strategy)
    }

    /// A weighted choice among several strategies yielding the same value type.
    pub struct Union<V> {
        variants: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, strategy)` pairs.
        ///
        /// # Panics
        ///
        /// Panics if `variants` is empty or all weights are zero.
        pub fn new(variants: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = variants.iter().map(|(w, _)| *w as u64).sum();
            assert!(
                total > 0,
                "prop_oneof! requires at least one positive weight"
            );
            Union { variants }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rand::Rng::gen_range(rng, 0..total);
            for (weight, strategy) in &self.variants {
                if pick < *weight as u64 {
                    return strategy.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }
}

pub mod collection {
    //! Strategies for collections of strategy-generated elements.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from `size` and elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s with a target size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `HashSet`s of `element` values with sizes in `size`.
    ///
    /// The element strategy must span at least `size.end - 1` distinct values,
    /// otherwise generation may give up below the requested size.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut set = HashSet::with_capacity(target);
            // Duplicates shrink the set, so retry with a generous attempt budget.
            let mut attempts = 0;
            while set.len() < target && attempts < 100 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG behind strategies.

    /// Configuration for a `proptest!` block; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Returns the default configuration with `cases` overridden.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Deterministic RNG seeded from the test name and case index, backed by the
    /// vendored `rand` crate's [`SmallRng`] (as real proptest delegates to `rand`).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Creates the RNG for case `case` of the test named `name`.
        ///
        /// Seeds are a hash of the test name xored with the case index, so each
        /// test gets an independent, reproducible stream.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod prelude {
    //! One-stop imports for tests, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body (no shrinking; panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a `proptest!` body (no shrinking; panics directly).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a `proptest!` body (no shrinking; panics directly).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Weighted choice among strategies, mirroring proptest's `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests, mirroring proptest's `proptest!` macro.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to an ordinary
/// `#[test]` (the attribute comes from the item itself) that runs `body` for
/// `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                    // Capture the inputs before the body can consume them, so a
                    // failing case can report what it was run with.
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(__panic) = __result {
                        eprintln!(
                            "proptest: {} failed at case {}/{} with inputs: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __inputs,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..1_000 {
            assert!((3..9u32).contains(&(3..9u32).generate(&mut rng)));
            assert!((0.0..1.0f64).contains(&(0.0..1.0f64).generate(&mut rng)));
        }
    }

    #[test]
    fn collections_honour_size_ranges() {
        let mut rng = crate::test_runner::TestRng::for_case("collections", 1);
        for _ in 0..200 {
            let v = crate::collection::vec(0..10u32, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            let s = crate::collection::hash_set(0usize..50, 1..10).generate(&mut rng);
            assert!((1..10).contains(&s.len()));
        }
    }

    #[test]
    fn oneof_respects_weights() {
        let strategy = prop_oneof![
            3 => (0..1u32).prop_map(|_| "heavy"),
            1 => (0..1u32).prop_map(|_| "light"),
        ];
        let mut rng = crate::test_runner::TestRng::for_case("oneof", 2);
        let heavy = (0..10_000)
            .filter(|_| strategy.generate(&mut rng) == "heavy")
            .count();
        assert!(
            (7_000..8_000).contains(&heavy),
            "heavy arm hit {heavy}/10000"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_arguments(x in 0..100u32, pair in (0..5usize, 0.0..1.0f64)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 5);
            prop_assert!((0.0..1.0).contains(&pair.1));
        }

        /// The failure path re-raises the panic (after reporting the case inputs).
        #[test]
        #[should_panic]
        fn failing_property_still_panics(x in 0..10u32) {
            prop_assert!(x > 100, "deliberately impossible");
        }
    }
}
