//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The fast-ppr workspace is built in hermetic environments with no access to
//! crates.io, so this vendored crate implements exactly the `rand` 0.8 API
//! subset the workspace uses:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable PRNG (xoshiro256++);
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`];
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::shuffle`].
//!
//! The streams are deterministic for a given seed (which is all the
//! experiments rely on) but do **not** bit-match the real `rand` crate.

use std::ops::Range;

/// Low-level source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed, expanding it to full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws a uniform sample from `range`.
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // Multiply-shift maps a uniform u64 onto [0, span) with
                // negligible bias for the span sizes used in this workspace.
                let offset = ((rng.next_u64() as u128 * span) >> 64) as $t;
                range.start + offset
            }
        }
    )*};
}

impl_sample_uniform_int!(u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let value = range.start + (range.end - range.start) * unit;
        // `start + span * (1 - 2^-53)` can round up to exactly `end`; keep the
        // documented half-open contract.
        if value < range.end {
            value
        } else {
            range.end.next_down()
        }
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open, `start..end`).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(range, self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoshiro256++ core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Returns the generator's full internal state.
        ///
        /// Together with [`SmallRng::from_state`] this lets a checkpointing system
        /// persist an RNG mid-stream and resume it bit-identically after a restart.
        /// (The real `rand` crate exposes the same capability through its serde
        /// feature; this vendored stub keeps the surface minimal and explicit.)
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state previously returned by
        /// [`SmallRng::state`].  The restored generator produces exactly the stream
        /// the original would have produced from that point on.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which is not reachable from any seed and
        /// would make xoshiro256++ emit zeros forever.
        pub fn from_state(state: [u64; 4]) -> Self {
            assert!(
                state.iter().any(|&w| w != 0),
                "the all-zero state is not a valid xoshiro256++ state"
            );
            SmallRng { s: state }
        }

        fn from_splitmix(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng::from_splitmix(state)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Extension trait adding random operations to slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits));
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn state_roundtrip_resumes_the_exact_stream() {
        let mut original = SmallRng::seed_from_u64(77);
        for _ in 0..13 {
            original.gen_range(0..1_000u32);
        }
        let saved = original.state();
        let mut resumed = SmallRng::from_state(saved);
        for _ in 0..100 {
            assert_eq!(
                original.gen_range(0..1_000_000u64),
                resumed.gen_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn all_zero_state_rejected() {
        let _ = SmallRng::from_state([0; 4]);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
