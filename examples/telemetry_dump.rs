//! Telemetry dump: run a small serving session with the unified registry
//! attached, then print the full exposition snapshot — every layer's metrics in
//! one sorted view — in both Prometheus text format and as one JSONL sample.
//!
//! Run with: `cargo run --release --example telemetry_dump`

use fast_ppr::prelude::*;
use fast_ppr::telemetry::{render_jsonl_line, render_prometheus};
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_serve::{Query, QueryBatch};

fn main() {
    // A synthetic follower graph arriving as an edge stream.
    let edges = preferential_attachment_edges(&PreferentialAttachmentConfig::new(2_000, 8, 42));
    let config = MonteCarloConfig::paper_defaults(4).with_seed(7);
    let engine = IncrementalPageRank::new_empty(2_000, config);

    // One registry observes the whole stack: attach it before the first commit
    // so the commit-stage spans (apply → mirror → WAL sync → publish) cover
    // every published generation.
    let tele = Telemetry::new();
    let mut serving = QueryEngine::new(engine, 4242)
        .with_telemetry(&tele)
        .with_pipeline(4);

    // Write path: commit the stream in 256-edge batches.
    for chunk in edges.chunks(256) {
        serving.commit_arrivals(chunk);
    }
    serving.flush_commits();

    // Read path: personalized top-k under a Corollary 9 fetch budget, so the
    // query spans, fetch histogram, and budget-exhausted counter all record.
    let handle = serving.handle();
    for qid in 0..64u64 {
        handle.serve(
            qid,
            &Query::PersonalizedTopK {
                seed: NodeId((qid * 31 % 2_000) as u32),
                k: 10,
                walk_length: 2_000,
                fetch_budget: Some(500),
            },
        );
    }

    // Batched read path: the same query shape through `QueryBatch`, pinning the
    // generation once per batch of 16 and sharing stitch-fetch state, so the
    // batch-size histogram and the batch_fetch_saved counter record too.
    for group in 0..4u64 {
        let mut batch = QueryBatch::new();
        for slot in 0..16u64 {
            let qid = 64 + group * 16 + slot;
            batch.push(
                qid,
                Query::PersonalizedTopK {
                    seed: NodeId((qid * 31 % 2_000) as u32),
                    k: 10,
                    walk_length: 2_000,
                    fetch_budget: Some(500),
                },
            );
        }
        handle.serve_batch(&batch);
    }

    // One collect() sees every layer: store, walk arena, commit path, fetch
    // cache, query path, and the serve-level gauges.
    let snap = serving.telemetry_snapshot().expect("registry attached");
    println!("{}", render_prometheus(&snap));
    println!("# one JSONL time-series sample of the same snapshot:");
    println!("{}", render_jsonl_line(&snap.with_label("telemetry_dump")));
}
