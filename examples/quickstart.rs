//! Quickstart: build a synthetic social graph, maintain Monte Carlo PageRank estimates,
//! and answer a personalized "who should this user follow?" query.
//!
//! Run with: `cargo run --release --example quickstart`

use fast_ppr::prelude::*;

fn main() {
    // A synthetic follower graph: 10 000 users, each following 10 accounts chosen by
    // preferential attachment (heavy-tailed in-degrees, like Twitter's).
    let graph = preferential_attachment(10_000, 10, 42);
    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Maintain R = 5 walk segments per node with reset probability ε = 0.2 (the paper's
    // setting).  Building the engine generates the initial segments.
    let config = MonteCarloConfig::paper_defaults(5).with_seed(7);
    let mut engine = IncrementalPageRank::from_graph(&graph, config);

    // Global PageRank estimates: print the five most reputable accounts.
    let scores = engine.scores();
    let mut ranked: Vec<usize> = (0..scores.len()).collect();
    ranked.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    println!("\ntop 5 accounts by estimated PageRank:");
    for &node in ranked.iter().take(5) {
        println!(
            "  node {node:5}  score {:.5}  followers {}",
            scores[node],
            graph.in_degree(NodeId::from_index(node))
        );
    }

    // New follows arrive: the engine repairs only the affected walk segments.
    let new_edges = [(3_001, 17), (3_001, 42), (9_999, 3_001)];
    for &(source, target) in &new_edges {
        let stats = engine.add_edge(Edge::new(source, target));
        println!(
            "arrival {source} -> {target}: {} segments repaired, {} walk steps",
            stats.segments_updated, stats.walk_steps
        );
    }

    // Personalized recommendation for user 3001: top 5 by personalized PageRank,
    // computed by stitching the cached walk segments (Algorithm 1).
    let recommendations = engine.personalized_top_k(NodeId(3_001), 5, 5_000);
    println!("\nwho user 3001 should follow (personalized PageRank):");
    for (node, score) in recommendations {
        println!("  node {node:5}  visit frequency {score:.4}");
    }

    // The fetch accounting the paper's Theorem 8 is about:
    let metrics = engine.social_store().metrics();
    println!("\nSocial Store fetches issued so far: {}", metrics.fetches);
}
