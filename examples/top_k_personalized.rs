//! Fetch efficiency of personalized top-k queries: how many Social-Store fetches a
//! stitched walk needs as the walk grows (Theorem 8), and how the Equation 4 walk length
//! compares with the Corollary 9 fetch bound (Remark 2).
//!
//! Run with: `cargo run --release --example top_k_personalized`

use fast_ppr::prelude::*;
use ppr_core::bounds;

fn main() {
    let graph = preferential_attachment(20_000, 25, 3);
    let r = 10;
    let epsilon = 0.2;
    let engine =
        IncrementalPageRank::from_graph(&graph, MonteCarloConfig::new(epsilon, r).with_seed(5));
    let seed = graph
        .nodes()
        .find(|&u| (20..=30).contains(&graph.out_degree(u)))
        .expect("generator gives every node 25 friends");

    // One shared read-only walker; every walk is a (query_seed, query_id)-keyed
    // query, so re-running this example — or serving the same queries from many
    // threads through ppr-serve — reproduces these rows bit for bit.
    let walker = PersonalizedWalker::new(engine.social_store(), engine.walk_store(), epsilon, 0);
    let query_seed = 42u64;
    println!("walk_length   fetches   fetches/step");
    for (query_id, &length) in [500usize, 2_000, 8_000, 32_000].iter().enumerate() {
        engine.social_store().reset_metrics();
        let result = walker.walk_query(seed, length, query_seed, query_id as u64);
        println!(
            "{length:11}   {:7}   {:.3}",
            result.fetches,
            result.fetches as f64 / result.total_visits as f64
        );
    }

    // Corollary 9 as an enforced budget: cap the fetches and the walk stops there.
    let budgeted = PersonalizedWalker::new(engine.social_store(), engine.walk_store(), epsilon, 0)
        .with_fetch_budget(10);
    let result = budgeted.walk_query(seed, 32_000, query_seed, 99);
    println!(
        "\nwith a 10-fetch budget: {} visits recorded, {} fetches spent, budget \
         exhausted: {}",
        result.total_visits, result.fetches, result.budget_exhausted
    );

    println!("\nRemark 2 closed forms (alpha = 0.75, c = 5, R = 10, k = 100, n = 1e8):");
    let s_k = bounds::walk_length_for_top_k(100, 5.0, 0.75, 100_000_000);
    println!("  walk length needed (Eq. 4):      {s_k:.0} steps");
    println!(
        "  fetch bound (Corollary 9):       {:.0} fetches",
        bounds::top_k_fetches(100, 5.0, 0.75, r)
    );

    println!("\ntop 10 personalized results for user {seed}:");
    for (node, score) in engine.personalized_top_k(seed, 10, 10_000) {
        println!("  node {node:6}  frequency {score:.4}");
    }
}
