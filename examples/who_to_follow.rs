//! "Who to Follow": compare the recommenders the paper evaluates in Table 1 — Monte
//! Carlo personalized PageRank and SALSA against HITS and COSINE — for one user of a
//! synthetic follower graph.
//!
//! Run with: `cargo run --release --example who_to_follow`

use fast_ppr::prelude::*;
use ppr_analysis::ranking::top_k_indices;
use ppr_baselines::cosine::cosine_recommender;
use std::collections::HashSet;

fn main() {
    let graph = preferential_attachment(20_000, 25, 1);
    // Pick a user with a normal-sized friend list.
    let user = graph
        .nodes()
        .find(|&u| (20..=30).contains(&graph.out_degree(u)))
        .expect("every node follows 25 accounts in this generator");
    let friends: HashSet<usize> = graph
        .out_neighbors(user)
        .iter()
        .map(|n| n.index())
        .collect();
    let exclude: HashSet<usize> = friends.iter().copied().chain([user.index()]).collect();
    println!("recommending for user {user} ({} friends)\n", friends.len());

    // 1. Monte Carlo personalized PageRank over cached walk segments (the paper's
    //    system): top-10 by visit frequency of a 10 000-step stitched walk.
    let engine =
        IncrementalPageRank::from_graph(&graph, MonteCarloConfig::new(0.2, 10).with_seed(3));
    let ppr = engine.personalized_top_k(user, 10, 10_000);
    println!("personalized PageRank (Monte Carlo, stitched walks):");
    for (node, score) in &ppr {
        println!("  node {node:6}  frequency {score:.4}");
    }
    println!(
        "  fetches issued: {}\n",
        engine.social_store().metrics().fetches
    );

    // 2. Monte Carlo personalized SALSA (relevance = authority score).
    let salsa = IncrementalSalsa::from_graph(&graph, MonteCarloConfig::new(0.2, 5).with_seed(5));
    println!("personalized SALSA (Monte Carlo):");
    for (node, score) in salsa.personalized_top_k(user, 10, 30_000) {
        println!("  node {node:6}  authority {score:.4}");
    }

    // 3. Personalized HITS (Appendix A baseline).
    let hits = personalized_hits(&graph, user, 0.2, 10);
    println!("\npersonalized HITS (baseline):");
    for node in top_k_indices(&hits.authorities, 10, &exclude) {
        println!("  node {node:6}  authority {:.4}", hits.authorities[node]);
    }

    // 4. COSINE similarity recommender (Appendix A baseline).
    let cosine = cosine_recommender(&graph, user);
    println!("\nCOSINE (baseline):");
    for node in top_k_indices(&cosine.authorities, 10, &exclude) {
        println!("  node {node:6}  score {:.4}", cosine.authorities[node]);
    }

    // Agreement between the Monte Carlo PageRank ranking and the exact personalized
    // power iteration, as a sanity check.
    let exact = personalized_power_iteration(
        &graph,
        user,
        &ppr_baselines::power_iteration::PowerIterationConfig::with_epsilon(0.2),
    );
    let exact_top: Vec<usize> = top_k_indices(&exact.scores, 10, &exclude);
    let mc_top: HashSet<usize> = ppr.iter().map(|(n, _)| n.index()).collect();
    let overlap = exact_top.iter().filter(|n| mc_top.contains(n)).count();
    println!("\nMonte Carlo vs exact personalized PageRank: {overlap}/10 of the top-10 agree");
}
