//! Incremental maintenance under a live edge stream: replay a random-permutation arrival
//! sequence, watch the per-arrival repair cost shrink like 1/t (Theorem 4), and check
//! the running estimates against power iteration at a few checkpoints.
//!
//! Run with: `cargo run --release --example incremental_stream`

use fast_ppr::prelude::*;
use ppr_core::bounds;
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_graph::stream::random_permutation;

fn main() {
    let nodes = 10_000;
    let out_degree = 8;
    let r = 5;
    let epsilon = 0.2;

    let generated =
        preferential_attachment_edges(&PreferentialAttachmentConfig::new(nodes, out_degree, 11));
    let arrivals = random_permutation(&generated, 13);
    let m = arrivals.len();

    let mut engine =
        IncrementalPageRank::new_empty(nodes, MonteCarloConfig::new(epsilon, r).with_seed(17));
    println!(
        "initialization: {} walk steps (expected ~ nR/eps = {:.0})",
        engine.initialization_steps(),
        engine.config().expected_initialization_cost(nodes)
    );
    engine.reset_work();

    println!("\n  arrivals   cum.steps   bound(Thm 4)   TVD vs power iteration");
    let checkpoints = [m / 100, m / 10, m / 2, m];
    let mut next = 0usize;
    for (t, &edge) in arrivals.iter().enumerate() {
        engine.add_edge(edge);
        if next < checkpoints.len() && t + 1 == checkpoints[next] {
            next += 1;
            let exact = power_iteration(
                engine.graph(),
                &ppr_baselines::power_iteration::PowerIterationConfig::with_epsilon(epsilon),
            );
            let tvd = engine.estimates().total_variation_distance(&exact.scores);
            println!(
                "  {:8}   {:9}   {:12.0}   {:.4}",
                t + 1,
                engine.work().walk_steps,
                bounds::total_update_work(nodes, r, t + 1, epsilon),
                tvd
            );
        }
    }

    println!(
        "\nper-arrival repair cost over the whole stream: {:.2} walk steps/edge",
        engine.work().steps_per_edge()
    );
    println!(
        "a single from-scratch rebuild would cost ~{:.0} walk steps",
        engine.config().expected_initialization_cost(nodes)
    );

    // Deletions are just as cheap (Proposition 5).
    let victims: Vec<_> = engine
        .graph()
        .collect_edges()
        .into_iter()
        .take(1_000)
        .collect();
    engine.reset_work();
    for edge in victims {
        engine.remove_edge(edge);
    }
    println!(
        "per-deletion repair cost: {:.2} walk steps (bound: {:.2})",
        engine.work().steps_per_edge(),
        bounds::deletion_update_work(nodes, r, m, epsilon) / epsilon
    );
}
